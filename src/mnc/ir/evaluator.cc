#include "mnc/ir/evaluator.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "mnc/core/mnc_estimator.h"
#include "mnc/core/row_estimates.h"
#include "mnc/estimators/sparsity_estimator.h"
#include "mnc/ir/sketch_propagator.h"
#include "mnc/matrix/ops_ewise.h"
#include "mnc/matrix/ops_product.h"
#include "mnc/matrix/ops_reorg.h"
#include "mnc/tuning/machine_profile.h"
#include "mnc/util/random.h"

namespace mnc {

ParallelConfig Evaluator::GuidedConfig() const {
  ParallelConfig config;
  if (pool_ != nullptr) config.num_threads = pool_->num_threads();
  config.profile = options_.profile.get();
  return config;
}

const tuning::MachineProfile* Evaluator::GuidedProfile() const {
  if (options_.profile != nullptr) return options_.profile.get();
  return tuning::ActiveProfileRaw();
}

const MncSketch& Evaluator::SketchFor(const ExprNode* node) {
  auto it = sketches_.find(node);
  if (it != sketches_.end()) return *it->second;

  std::shared_ptr<const MncSketch> sketch;
  if (node->is_leaf()) {
    if (options_.leaf_sketches) sketch = options_.leaf_sketches(*node);
    if (sketch == nullptr) {
      sketch = std::make_shared<const MncSketch>(
          pool_ != nullptr
              ? MncSketch::FromMatrix(node->matrix(), GuidedConfig(), pool_)
              : MncSketch::FromMatrix(node->matrix()));
    }
  } else {
    // The post-order evaluation walk sketches children before parents, so
    // these lookups are memo hits; the explicit sequencing keeps the
    // sketch_seq_ draw order deterministic regardless.
    const MncSketch& left = SketchFor(node->left().get());
    const MncSketch* right = nullptr;
    if (node->right() != nullptr) right = &SketchFor(node->right().get());
    sketch = std::make_shared<const MncSketch>(PropagateNodeSketch(
        *node, left, right, MixSeed(options_.seed, sketch_seq_++),
        options_.rounding, GuidedConfig(), pool_));
  }
  auto [pos, inserted] = sketches_.emplace(node, std::move(sketch));
  (void)inserted;
  return *pos->second;
}

Matrix Evaluator::GuidedMultiply(const ExprNode* node, const Matrix& a,
                                 const Matrix& b, const MncSketch& sa,
                                 const MncSketch& sb) {
  const ParallelConfig config = GuidedConfig();
  const bool parallel = config.enabled() && pool_ != nullptr;
  // Calibrated guided break-evens, falling back to the built-in constants
  // when uncalibrated. The threshold only picks the physical output format
  // / accumulation order of paths that compute identical values, so a
  // calibrated profile never changes results.
  const tuning::MachineProfile* prof = GuidedProfile();
  const double dense_threshold =
      prof != nullptr && prof->guided.dense_dispatch_threshold >= 0.0
          ? prof->guided.dense_dispatch_threshold
          : kDenseDispatchThreshold;
  if (!a.is_dense() && !b.is_dense()) {
    const int64_t m = a.rows();
    const int64_t l = b.cols();
    const std::vector<RowProductEstimate> rows =
        parallel ? EstimateProductRows(a.csr(), sb, config, pool_)
                 : EstimateProductRows(a.csr(), sb);
    RowEstimateTable table = BuildRowEstimateTable(rows);
    const double cells = static_cast<double>(m) * static_cast<double>(l);
    const double est_sp =
        cells > 0.0 ? std::min(table.summary.estimate_total / cells, 1.0)
                    : 0.0;
    if (est_sp >= dense_threshold) {
      // Estimated-dense product: accumulate straight into a DenseMatrix
      // instead of materializing CSR and converting afterwards, which is
      // what the blind path does for a dense-bound product.
      guided_stats_.guided_products += 1;
      guided_stats_.dense_direct += 1;
      const int64_t blind_nnz = std::min(
          static_cast<int64_t>(table.summary.estimate_total), m * l);
      const int64_t blind_bytes =
          prof != nullptr && prof->guided.blind_reserve_bytes_per_nnz > 0.0
              ? static_cast<int64_t>(prof->guided.blind_reserve_bytes_per_nnz *
                                     static_cast<double>(blind_nnz))
              : BlindReserveBytesModel(blind_nnz);
      guided_stats_.blind_reserve_bytes += blind_bytes;
      if (options_.plan_record) {
        ProductPlanEntry entry;
        entry.sparse_sparse = true;
        entry.dense_direct = true;
        entry.est_sparsity = est_sp;
        entry.blind_reserve_bytes = blind_bytes;
        options_.plan_record(node, std::move(entry));
      }
      return Matrix::Dense(MultiplySparseSparseDense(a.csr(), b.csr(), pool_));
    }
    GuidedProductOptions opts;
    opts.single_pass_budget_bytes =
        prof != nullptr && prof->guided.single_pass_budget_bytes > 0
            ? prof->guided.single_pass_budget_bytes
            : options_.single_pass_budget_bytes;
    opts.merge_accum_max_nnz = options_.merge_accum_max_nnz;
    if (options_.plan_record) {
      ProductPlanEntry entry;
      entry.sparse_sparse = true;
      entry.est_sparsity = est_sp;
      entry.table = table;
      entry.opts = opts;
      options_.plan_record(node, std::move(entry));
    }
    return Matrix::AutoFromCsr(MultiplySparseSparseGuided(
        a.csr(), b.csr(), table.upper, table.estimate, opts, config, pool_,
        &guided_stats_));
  }
  // Mixed/dense products materialize a dense result anyway; the estimate
  // replaces AutoFromDense's O(rows * cols) output scan with a direct
  // format choice (AutoFromDenseEstimated).
  guided_stats_.guided_products += 1;
  const double est_sp = parallel ? EstimateProductSparsity(sa, sb, config, pool_)
                                 : EstimateProductSparsity(sa, sb);
  DenseMatrix out =
      a.is_dense() && b.is_dense()
          ? MultiplyDenseDense(a.dense(), b.dense(), pool_)
          : (a.is_dense() ? MultiplyDenseSparse(a.dense(), b.csr())
                          : MultiplySparseDense(a.csr(), b.dense()));
  if (est_sp >= dense_threshold) guided_stats_.dense_direct += 1;
  if (options_.plan_record) {
    ProductPlanEntry entry;
    entry.dense_direct = est_sp >= dense_threshold;
    entry.est_sparsity = est_sp;
    options_.plan_record(node, std::move(entry));
  }
  return Matrix::AutoFromDenseEstimated(std::move(out), est_sp);
}

Matrix Evaluator::ReplayMultiply(const ExprNode* node, const Matrix& a,
                                 const Matrix& b) {
  const ProductPlanEntry* plan = options_.plan_lookup(node);
  // Replay preserves the cold guided execution exactly: the same kernels
  // consume the same recorded vectors and budgets, so values AND physical
  // formats reproduce bit-for-bit. The blind fallbacks below cover decision
  // records that no longer match the operands' formats (possible only if a
  // stale plan outlived an invalidation edge) — blind kernels compute
  // bit-identical values in whatever format the operands dictate.
  if (plan == nullptr) return Multiply(a, b, pool_);
  if (plan->sparse_sparse) {
    if (a.is_dense() || b.is_dense()) return Multiply(a, b, pool_);
    if (plan->dense_direct) {
      guided_stats_.guided_products += 1;
      guided_stats_.dense_direct += 1;
      guided_stats_.blind_reserve_bytes += plan->blind_reserve_bytes;
      return Matrix::Dense(MultiplySparseSparseDense(a.csr(), b.csr(), pool_));
    }
    if (plan->table.upper.size() != static_cast<size_t>(a.rows())) {
      return Multiply(a, b, pool_);
    }
    return Matrix::AutoFromCsr(MultiplySparseSparseGuided(
        a.csr(), b.csr(), plan->table.upper, plan->table.estimate, plan->opts,
        GuidedConfig(), pool_, &guided_stats_));
  }
  if (!a.is_dense() && !b.is_dense()) return Multiply(a, b, pool_);
  guided_stats_.guided_products += 1;
  DenseMatrix out =
      a.is_dense() && b.is_dense()
          ? MultiplyDenseDense(a.dense(), b.dense(), pool_)
          : (a.is_dense() ? MultiplyDenseSparse(a.dense(), b.csr())
                          : MultiplySparseDense(a.csr(), b.dense()));
  if (plan->dense_direct) guided_stats_.dense_direct += 1;
  return Matrix::AutoFromDenseEstimated(std::move(out), plan->est_sparsity);
}

Matrix Evaluator::Evaluate(const ExprPtr& root) {
  MNC_CHECK(root != nullptr);
  pinned_roots_.push_back(root);
  // Iterative post-order to keep deep chains off the call stack.
  std::vector<const ExprNode*> stack = {root.get()};
  while (!stack.empty()) {
    const ExprNode* node = stack.back();
    if (cache_.contains(node)) {
      stack.pop_back();
      continue;
    }
    if (node->is_leaf()) {
      cache_.emplace(node, node->matrix());
      if (options_.guided) SketchFor(node);
      stack.pop_back();
      continue;
    }
    const ExprNode* left = node->left().get();
    const ExprNode* right =
        node->right() != nullptr ? node->right().get() : nullptr;
    const bool left_ready = cache_.contains(left);
    const bool right_ready = right == nullptr || cache_.contains(right);
    if (!left_ready || !right_ready) {
      if (!left_ready) stack.push_back(left);
      if (!right_ready) stack.push_back(right);
      continue;
    }
    const Matrix& a = cache_.at(left);
    Matrix result = Matrix::Sparse(CsrMatrix(0, 0));
    switch (node->op()) {
      case OpKind::kMatMul:
        // Guided mode consults the operands' propagated sketches; both are
        // memo hits here (children were sketched when cached). Either path
        // yields bit-identical values (guided may differ in physical format
        // only when the estimate is wrong about the dense threshold).
        // Replay mode (plan_lookup) re-dispatches from recorded decisions
        // without any sketch.
        result = options_.guided
                     ? GuidedMultiply(node, a, cache_.at(right),
                                      SketchFor(left), SketchFor(right))
                     : (options_.plan_lookup
                            ? ReplayMultiply(node, a, cache_.at(right))
                            : Multiply(a, cache_.at(right), pool_));
        break;
      case OpKind::kEWiseAdd:
        result = Add(a, cache_.at(right));
        break;
      case OpKind::kEWiseMult:
        result = MultiplyEWise(a, cache_.at(right));
        break;
      case OpKind::kTranspose: {
        // A cataloged leaf's transpose may be pre-packed by the service's
        // packed-operand store; the cached matrix is the bit-exact
        // Transpose of the leaf, so substituting it cannot change results.
        std::shared_ptr<const Matrix> packed;
        if (options_.cached_transpose && node->left()->is_leaf() &&
            node->left()->has_matrix()) {
          packed = options_.cached_transpose(*node->left());
        }
        result = packed != nullptr ? *packed : Transpose(a);
        break;
      }
      case OpKind::kReshape:
        result = Reshape(a, node->rows(), node->cols());
        break;
      case OpKind::kDiag:
        result = Diag(a);
        break;
      case OpKind::kRBind:
        result = RBind(a, cache_.at(right));
        break;
      case OpKind::kCBind:
        result = CBind(a, cache_.at(right));
        break;
      case OpKind::kNotEqualZero:
        result = NotEqualZero(a);
        break;
      case OpKind::kEqualZero:
        result = EqualZero(a);
        break;
      case OpKind::kEWiseMin:
        result = MinEWise(a, cache_.at(right));
        break;
      case OpKind::kEWiseMax:
        result = MaxEWise(a, cache_.at(right));
        break;
      case OpKind::kScale:
        result = Scale(a, node->scale_alpha());
        break;
      case OpKind::kRowSums:
        result = RowSums(a);
        break;
      case OpKind::kColSums:
        result = ColSums(a);
        break;
    }
    cache_.emplace(node, std::move(result));
    if (options_.guided) SketchFor(node);
    stack.pop_back();
  }
  return cache_.at(root.get());
}

Status Evaluator::ValidateDag(const ExprPtr& root) const {
  if (root == nullptr) {
    return Status::InvalidArgument("null expression root");
  }
  std::vector<const ExprNode*> stack = {root.get()};
  std::unordered_map<const ExprNode*, bool> visited;
  while (!stack.empty()) {
    const ExprNode* node = stack.back();
    stack.pop_back();
    if (visited.contains(node)) continue;
    visited.emplace(node, true);
    if (node->is_leaf()) {
      // A sketch-only leaf (streaming registration) has nothing to
      // materialize; evaluation of any DAG containing one must fail with a
      // typed error rather than an MNC_CHECK abort inside matrix().
      if (!node->has_matrix()) {
        return Status::FailedPrecondition(
            "leaf '" + node->name() +
            "' is sketch-only (registered by streaming ingestion) and has "
            "no backing matrix to evaluate");
      }
      continue;
    }

    const ExprNode* left = node->left().get();
    const ExprNode* right =
        node->right() != nullptr ? node->right().get() : nullptr;
    if (left == nullptr) {
      return Status::InvalidArgument("node " + node->ToString() +
                                     " has no left operand");
    }
    const Shape a{left->rows(), left->cols()};
    const Shape b_shape{right != nullptr ? right->rows() : 0,
                        right != nullptr ? right->cols() : 0};
    StatusOr<Shape> out = TryInferOutputShape(
        node->op(), a, right != nullptr ? &b_shape : nullptr, node->rows(),
        node->cols());
    if (!out.ok()) {
      return out.status().WithContext("node " + node->ToString());
    }
    if (out->rows != node->rows() || out->cols != node->cols()) {
      return Status::InvalidArgument(
          "node " + node->ToString() + " declares " +
          std::to_string(node->rows()) + " x " + std::to_string(node->cols()) +
          " but its operands imply " + std::to_string(out->rows) + " x " +
          std::to_string(out->cols));
    }
    stack.push_back(left);
    if (right != nullptr) stack.push_back(right);
  }
  return Status::Ok();
}

StatusOr<Matrix> Evaluator::TryEvaluate(const ExprPtr& root) {
  MNC_RETURN_IF_ERROR(ValidateDag(root));
  try {
    return Evaluate(root);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("evaluation failed: ") + e.what());
  } catch (...) {
    return Status::Internal("evaluation failed with an unknown exception");
  }
}

}  // namespace mnc
