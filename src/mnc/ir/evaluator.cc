#include "mnc/ir/evaluator.h"

#include <vector>

#include "mnc/matrix/ops_ewise.h"
#include "mnc/matrix/ops_product.h"
#include "mnc/matrix/ops_reorg.h"

namespace mnc {

Matrix Evaluator::Evaluate(const ExprPtr& root) {
  MNC_CHECK(root != nullptr);
  pinned_roots_.push_back(root);
  // Iterative post-order to keep deep chains off the call stack.
  std::vector<const ExprNode*> stack = {root.get()};
  while (!stack.empty()) {
    const ExprNode* node = stack.back();
    if (cache_.contains(node)) {
      stack.pop_back();
      continue;
    }
    if (node->is_leaf()) {
      cache_.emplace(node, node->matrix());
      stack.pop_back();
      continue;
    }
    const ExprNode* left = node->left().get();
    const ExprNode* right =
        node->right() != nullptr ? node->right().get() : nullptr;
    const bool left_ready = cache_.contains(left);
    const bool right_ready = right == nullptr || cache_.contains(right);
    if (!left_ready || !right_ready) {
      if (!left_ready) stack.push_back(left);
      if (!right_ready) stack.push_back(right);
      continue;
    }
    const Matrix& a = cache_.at(left);
    Matrix result = Matrix::Sparse(CsrMatrix(0, 0));
    switch (node->op()) {
      case OpKind::kMatMul:
        result = Multiply(a, cache_.at(right), pool_);
        break;
      case OpKind::kEWiseAdd:
        result = Add(a, cache_.at(right));
        break;
      case OpKind::kEWiseMult:
        result = MultiplyEWise(a, cache_.at(right));
        break;
      case OpKind::kTranspose:
        result = Transpose(a);
        break;
      case OpKind::kReshape:
        result = Reshape(a, node->rows(), node->cols());
        break;
      case OpKind::kDiag:
        result = Diag(a);
        break;
      case OpKind::kRBind:
        result = RBind(a, cache_.at(right));
        break;
      case OpKind::kCBind:
        result = CBind(a, cache_.at(right));
        break;
      case OpKind::kNotEqualZero:
        result = NotEqualZero(a);
        break;
      case OpKind::kEqualZero:
        result = EqualZero(a);
        break;
      case OpKind::kEWiseMin:
        result = MinEWise(a, cache_.at(right));
        break;
      case OpKind::kEWiseMax:
        result = MaxEWise(a, cache_.at(right));
        break;
      case OpKind::kScale:
        result = Scale(a, node->scale_alpha());
        break;
      case OpKind::kRowSums:
        result = RowSums(a);
        break;
      case OpKind::kColSums:
        result = ColSums(a);
        break;
    }
    cache_.emplace(node, std::move(result));
    stack.pop_back();
  }
  return cache_.at(root.get());
}

}  // namespace mnc
