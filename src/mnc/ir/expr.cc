#include "mnc/ir/expr.h"

#include <unordered_map>
#include <unordered_set>

#include "mnc/matrix/ops_reorg.h"

namespace mnc {

ExprPtr ExprNode::Leaf(Matrix m, std::string name) {
  auto node = std::shared_ptr<ExprNode>(new ExprNode());
  node->is_leaf_ = true;
  node->has_matrix_ = true;
  node->rows_ = m.rows();
  node->cols_ = m.cols();
  node->matrix_ = std::move(m);
  node->name_ = std::move(name);
  return node;
}

ExprPtr ExprNode::SketchLeaf(std::string name, int64_t rows, int64_t cols,
                             uint64_t fingerprint) {
  MNC_CHECK(rows >= 0 && cols >= 0);
  auto node = std::shared_ptr<ExprNode>(new ExprNode());
  node->is_leaf_ = true;
  node->has_matrix_ = false;
  node->leaf_fingerprint_ = fingerprint;
  node->rows_ = rows;
  node->cols_ = cols;
  node->name_ = std::move(name);
  return node;
}

ExprPtr ExprNode::MakeUnary(OpKind op, ExprPtr a, int64_t out_rows,
                            int64_t out_cols, double alpha) {
  MNC_CHECK(a != nullptr);
  auto node = std::shared_ptr<ExprNode>(new ExprNode());
  node->op_ = op;
  node->scale_alpha_ = alpha;
  const Shape out = InferOutputShape(op, {a->rows(), a->cols()}, nullptr,
                                     out_rows, out_cols);
  node->rows_ = out.rows;
  node->cols_ = out.cols;
  node->left_ = std::move(a);
  return node;
}

ExprPtr ExprNode::MakeBinary(OpKind op, ExprPtr a, ExprPtr b) {
  MNC_CHECK(a != nullptr);
  MNC_CHECK(b != nullptr);
  auto node = std::shared_ptr<ExprNode>(new ExprNode());
  node->op_ = op;
  const Shape shape_b{b->rows(), b->cols()};
  const Shape out = InferOutputShape(op, {a->rows(), a->cols()}, &shape_b);
  node->rows_ = out.rows;
  node->cols_ = out.cols;
  node->left_ = std::move(a);
  node->right_ = std::move(b);
  return node;
}

ExprPtr ExprNode::MatMul(ExprPtr a, ExprPtr b) {
  return MakeBinary(OpKind::kMatMul, std::move(a), std::move(b));
}
ExprPtr ExprNode::EWiseAdd(ExprPtr a, ExprPtr b) {
  return MakeBinary(OpKind::kEWiseAdd, std::move(a), std::move(b));
}
ExprPtr ExprNode::EWiseMult(ExprPtr a, ExprPtr b) {
  return MakeBinary(OpKind::kEWiseMult, std::move(a), std::move(b));
}
ExprPtr ExprNode::Transpose(ExprPtr a) {
  return MakeUnary(OpKind::kTranspose, std::move(a), -1, -1);
}
ExprPtr ExprNode::Reshape(ExprPtr a, int64_t rows, int64_t cols) {
  return MakeUnary(OpKind::kReshape, std::move(a), rows, cols);
}
ExprPtr ExprNode::Diag(ExprPtr a) {
  return MakeUnary(OpKind::kDiag, std::move(a), -1, -1);
}
ExprPtr ExprNode::RBind(ExprPtr a, ExprPtr b) {
  return MakeBinary(OpKind::kRBind, std::move(a), std::move(b));
}
ExprPtr ExprNode::CBind(ExprPtr a, ExprPtr b) {
  return MakeBinary(OpKind::kCBind, std::move(a), std::move(b));
}
ExprPtr ExprNode::NotEqualZero(ExprPtr a) {
  return MakeUnary(OpKind::kNotEqualZero, std::move(a), -1, -1);
}
ExprPtr ExprNode::EqualZero(ExprPtr a) {
  return MakeUnary(OpKind::kEqualZero, std::move(a), -1, -1);
}
ExprPtr ExprNode::EWiseMin(ExprPtr a, ExprPtr b) {
  return MakeBinary(OpKind::kEWiseMin, std::move(a), std::move(b));
}
ExprPtr ExprNode::EWiseMax(ExprPtr a, ExprPtr b) {
  return MakeBinary(OpKind::kEWiseMax, std::move(a), std::move(b));
}
ExprPtr ExprNode::Scale(ExprPtr a, double alpha) {
  MNC_CHECK_MSG(alpha != 0.0, "zero scale collapses the expression");
  return MakeUnary(OpKind::kScale, std::move(a), -1, -1, alpha);
}
ExprPtr ExprNode::RowSums(ExprPtr a) {
  return MakeUnary(OpKind::kRowSums, std::move(a), -1, -1);
}
ExprPtr ExprNode::ColSums(ExprPtr a) {
  return MakeUnary(OpKind::kColSums, std::move(a), -1, -1);
}

int64_t ExprNode::NumNodes() const {
  std::unordered_set<const ExprNode*> visited;
  std::vector<const ExprNode*> stack = {this};
  while (!stack.empty()) {
    const ExprNode* node = stack.back();
    stack.pop_back();
    if (!visited.insert(node).second) continue;
    if (node->left_ != nullptr) stack.push_back(node->left_.get());
    if (node->right_ != nullptr) stack.push_back(node->right_.get());
  }
  return static_cast<int64_t>(visited.size());
}

std::string ExprNode::ToString() const {
  if (is_leaf_) {
    return name_.empty() ? "Leaf" : name_;
  }
  std::string out = OpKindName(op_);
  out += "(";
  out += left_->ToString();
  if (right_ != nullptr) {
    out += ", ";
    out += right_->ToString();
  }
  out += ")";
  return out;
}


ExprPtr RebuildWithChildren(const ExprPtr& node, ExprPtr left,
                            ExprPtr right) {
  MNC_CHECK(node != nullptr);
  if (node->is_leaf()) return node;
  if (left == node->left() && right == node->right()) return node;
  switch (node->op()) {
    case OpKind::kMatMul:
      return ExprNode::MatMul(std::move(left), std::move(right));
    case OpKind::kEWiseAdd:
      return ExprNode::EWiseAdd(std::move(left), std::move(right));
    case OpKind::kEWiseMult:
      return ExprNode::EWiseMult(std::move(left), std::move(right));
    case OpKind::kEWiseMin:
      return ExprNode::EWiseMin(std::move(left), std::move(right));
    case OpKind::kEWiseMax:
      return ExprNode::EWiseMax(std::move(left), std::move(right));
    case OpKind::kTranspose:
      return ExprNode::Transpose(std::move(left));
    case OpKind::kReshape:
      return ExprNode::Reshape(std::move(left), node->rows(), node->cols());
    case OpKind::kDiag:
      return ExprNode::Diag(std::move(left));
    case OpKind::kRBind:
      return ExprNode::RBind(std::move(left), std::move(right));
    case OpKind::kCBind:
      return ExprNode::CBind(std::move(left), std::move(right));
    case OpKind::kNotEqualZero:
      return ExprNode::NotEqualZero(std::move(left));
    case OpKind::kEqualZero:
      return ExprNode::EqualZero(std::move(left));
    case OpKind::kScale:
      return ExprNode::Scale(std::move(left), node->scale_alpha());
    case OpKind::kRowSums:
      return ExprNode::RowSums(std::move(left));
    case OpKind::kColSums:
      return ExprNode::ColSums(std::move(left));
  }
  MNC_CHECK_MSG(false, "unreachable");
  return node;
}

namespace {

ExprPtr FoldImpl(const ExprPtr& node,
                 std::unordered_map<const ExprNode*, ExprPtr>& memo) {
  auto it = memo.find(node.get());
  if (it != memo.end()) return it->second;

  ExprPtr result;
  if (node->is_leaf()) {
    result = node;
  } else if (node->op() == OpKind::kTranspose && node->left()->is_leaf() &&
             node->left()->has_matrix()) {
    result = ExprNode::Leaf(mnc::Transpose(node->left()->matrix()),
                            node->left()->name().empty()
                                ? ""
                                : node->left()->name() + "^T");
  } else {
    const ExprPtr left = FoldImpl(node->left(), memo);
    const ExprPtr right =
        node->right() != nullptr ? FoldImpl(node->right(), memo) : nullptr;
    result = RebuildWithChildren(node, left, right);
  }
  memo.emplace(node.get(), result);
  return result;
}

}  // namespace

ExprPtr FoldTransposedLeaves(const ExprPtr& root) {
  MNC_CHECK(root != nullptr);
  std::unordered_map<const ExprNode*, ExprPtr> memo;
  return FoldImpl(root, memo);
}

}  // namespace mnc
