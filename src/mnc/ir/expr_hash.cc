#include "mnc/ir/expr_hash.h"

#include <cstring>
#include <utility>
#include <vector>

namespace mnc {

namespace {

// splitmix64 finalizer — the same mixer the Rng seeds with.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t Combine(uint64_t h, uint64_t v) {
  return Mix(h ^ (v * 0xFF51AFD7ED558CCDULL));
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

uint64_t LeafFingerprint(const ExprNode& node, const LeafFingerprintFn& fn) {
  if (fn != nullptr) return fn(node);
  // Sketch-only leaves carry their catalog fingerprint directly; it lives in
  // a seed space disjoint from MatrixFingerprint, so a streamed registration
  // never collides with a materialized one.
  if (!node.has_matrix()) return node.leaf_fingerprint();
  return MatrixFingerprint(node.matrix());
}

// Tag separating leaf hashes from operation hashes; operations use
// 2 + static_cast<int>(op).
constexpr uint64_t kLeafTag = 1;

bool IsCommutative(OpKind op) {
  return op == OpKind::kEWiseAdd || op == OpKind::kEWiseMult ||
         op == OpKind::kEWiseMin || op == OpKind::kEWiseMax;
}

bool IsMatMul(const ExprPtr& n) {
  return !n->is_leaf() && n->op() == OpKind::kMatMul;
}

}  // namespace

uint64_t ExprHasher::Hash(const ExprPtr& node) {
  MNC_CHECK(node != nullptr);
  auto it = memo_.find(node.get());
  if (it != memo_.end()) return it->second;

  uint64_t h;
  if (node->is_leaf()) {
    h = Combine(kLeafTag, LeafFingerprint(*node, leaf_fp_));
  } else {
    h = 2 + static_cast<uint64_t>(node->op());
    if (node->op() == OpKind::kScale) {
      h = Combine(h, DoubleBits(node->scale_alpha()));
    }
    h = Combine(h, Hash(node->left()));
    h = Combine(h, node->right() != nullptr ? Hash(node->right()) : 0);
  }
  // Shape folds in reshape targets and disambiguates fingerprint-colliding
  // leaves of different dimensions.
  h = Combine(h, static_cast<uint64_t>(node->rows()));
  h = Combine(h, static_cast<uint64_t>(node->cols()));
  memo_.emplace(node.get(), h);
  return h;
}

uint64_t StructuralHash(const ExprPtr& root, const LeafFingerprintFn& leaf_fp) {
  ExprHasher hasher(leaf_fp);
  return hasher.Hash(root);
}

namespace {

struct PtrPairHash {
  size_t operator()(const std::pair<const ExprNode*, const ExprNode*>& p)
      const {
    return static_cast<size_t>(
        Combine(reinterpret_cast<uintptr_t>(p.first),
                reinterpret_cast<uintptr_t>(p.second)));
  }
};

class Equality {
 public:
  explicit Equality(const LeafFingerprintFn& leaf_fp) : leaf_fp_(leaf_fp) {}

  bool Equal(const ExprPtr& a, const ExprPtr& b) {
    if (a.get() == b.get()) return true;
    if (a->rows() != b->rows() || a->cols() != b->cols()) return false;
    if (a->is_leaf() != b->is_leaf()) return false;
    if (a->is_leaf()) return Fingerprint(a) == Fingerprint(b);
    if (a->op() != b->op()) return false;
    if (a->op() == OpKind::kScale && a->scale_alpha() != b->scale_alpha()) {
      return false;
    }
    const auto key = std::make_pair(a.get(), b.get());
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    bool eq = Equal(a->left(), b->left());
    if (eq) {
      if ((a->right() == nullptr) != (b->right() == nullptr)) {
        eq = false;
      } else if (a->right() != nullptr) {
        eq = Equal(a->right(), b->right());
      }
    }
    memo_.emplace(key, eq);
    return eq;
  }

 private:
  uint64_t Fingerprint(const ExprPtr& leaf) {
    auto it = fp_memo_.find(leaf.get());
    if (it != fp_memo_.end()) return it->second;
    const uint64_t fp = LeafFingerprint(*leaf, leaf_fp_);
    fp_memo_.emplace(leaf.get(), fp);
    return fp;
  }

  const LeafFingerprintFn& leaf_fp_;
  std::unordered_map<std::pair<const ExprNode*, const ExprNode*>, bool,
                     PtrPairHash>
      memo_;
  std::unordered_map<const ExprNode*, uint64_t> fp_memo_;
};

class Canonicalizer {
 public:
  explicit Canonicalizer(const LeafFingerprintFn& leaf_fp)
      : hasher_(leaf_fp) {}

  ExprPtr Canon(const ExprPtr& node) {
    auto it = memo_.find(node.get());
    if (it != memo_.end()) return it->second;

    ExprPtr result;
    if (node->is_leaf()) {
      result = node;
    } else {
      switch (node->op()) {
        case OpKind::kTranspose: {
          const ExprPtr child = Canon(node->left());
          if (!child->is_leaf() && child->op() == OpKind::kTranspose) {
            result = child->left();  // t(t(X)) -> X
          } else if (child == node->left()) {
            result = node;
          } else {
            result = ExprNode::Transpose(child);
          }
          break;
        }
        case OpKind::kMatMul: {
          // Re-associate the product chain left-deep: the canonical left
          // child is already left-deep, so only the right side's factors
          // need folding in.
          const ExprPtr left = Canon(node->left());
          std::vector<ExprPtr> rfactors;
          Flatten(Canon(node->right()), rfactors);
          if (left == node->left() && rfactors.size() == 1 &&
              rfactors[0] == node->right()) {
            result = node;  // already canonical
          } else {
            ExprPtr acc = left;
            for (ExprPtr& f : rfactors) {
              acc = ExprNode::MatMul(std::move(acc), std::move(f));
            }
            result = acc;
          }
          break;
        }
        default: {
          ExprPtr left = Canon(node->left());
          ExprPtr right =
              node->right() != nullptr ? Canon(node->right()) : nullptr;
          if (IsCommutative(node->op()) &&
              hasher_.Hash(left) > hasher_.Hash(right)) {
            std::swap(left, right);
          }
          result = RebuildWithChildren(node, std::move(left),
                                       std::move(right));
          break;
        }
      }
    }
    memo_.emplace(node.get(), result);
    return result;
  }

 private:
  // Collects the factors of an already-canonical product subtree in order.
  static void Flatten(const ExprPtr& node, std::vector<ExprPtr>& out) {
    if (IsMatMul(node)) {
      Flatten(node->left(), out);
      Flatten(node->right(), out);
    } else {
      out.push_back(node);
    }
  }

  ExprHasher hasher_;
  std::unordered_map<const ExprNode*, ExprPtr> memo_;
};

}  // namespace

bool StructuralEqual(const ExprPtr& a, const ExprPtr& b,
                     const LeafFingerprintFn& leaf_fp) {
  MNC_CHECK(a != nullptr);
  MNC_CHECK(b != nullptr);
  Equality eq(leaf_fp);
  return eq.Equal(a, b);
}

ExprPtr CanonicalizeExpr(const ExprPtr& root,
                         const LeafFingerprintFn& leaf_fp) {
  MNC_CHECK(root != nullptr);
  Canonicalizer canon(leaf_fp);
  return canon.Canon(root);
}

}  // namespace mnc
