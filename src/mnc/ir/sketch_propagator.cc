#include "mnc/ir/sketch_propagator.h"

#include <vector>

#include "mnc/util/random.h"

namespace mnc {

MncSketch PropagateNodeSketch(const ExprNode& node, const MncSketch& left,
                              const MncSketch* right, uint64_t seed,
                              RoundingMode mode, const ParallelConfig& config,
                              ThreadPool* pool) {
  Rng rng(seed);
  const bool parallel = config.enabled() && pool != nullptr;
  switch (node.op()) {
    case OpKind::kMatMul:
      if (parallel) {
        return PropagateProduct(left, *right, seed, config, pool,
                                /*basic=*/false, mode);
      }
      return PropagateProduct(left, *right, rng, /*basic=*/false, mode);
    case OpKind::kEWiseAdd:
    case OpKind::kEWiseMax:
      if (parallel) {
        return PropagateEWiseAdd(left, *right, seed, config, pool, mode);
      }
      return node.op() == OpKind::kEWiseAdd
                 ? PropagateEWiseAdd(left, *right, rng, mode)
                 : PropagateEWiseMax(left, *right, rng, mode);
    case OpKind::kEWiseMult:
    case OpKind::kEWiseMin:
      if (parallel) {
        return PropagateEWiseMult(left, *right, seed, config, pool, mode);
      }
      return node.op() == OpKind::kEWiseMult
                 ? PropagateEWiseMult(left, *right, rng, mode)
                 : PropagateEWiseMin(left, *right, rng, mode);
    case OpKind::kTranspose:
      return PropagateTranspose(left);
    case OpKind::kReshape:
      return PropagateReshape(left, node.rows(), node.cols(), rng, mode);
    case OpKind::kDiag:
      return PropagateDiag(left, rng, mode);
    case OpKind::kRBind:
      return PropagateRBind(left, *right);
    case OpKind::kCBind:
      return PropagateCBind(left, *right);
    case OpKind::kNotEqualZero:
      return PropagateNotEqualZero(left);
    case OpKind::kEqualZero:
      return PropagateEqualZero(left);
    case OpKind::kScale:
      return PropagateScale(left);
    case OpKind::kRowSums:
      return PropagateRowSums(left);
    case OpKind::kColSums:
      return PropagateColSums(left);
  }
  MNC_CHECK_MSG(false, "unhandled operation in PropagateNodeSketch");
  return left;  // unreachable
}

bool SketchPropagator::Supports(const ExprPtr& root) const {
  MNC_CHECK(root != nullptr);
  if (root->is_leaf()) return true;
  std::vector<std::pair<const ExprNode*, bool>> stack = {
      {root.get(), /*is_root=*/true}};
  while (!stack.empty()) {
    const auto [node, is_root] = stack.back();
    stack.pop_back();
    if (node->is_leaf()) continue;
    if (!estimator_->SupportsOp(node->op())) return false;
    // A non-root operation's output must be propagated as a synopsis.
    if (!is_root && !estimator_->SupportsChains()) return false;
    stack.push_back({node->left().get(), false});
    if (node->right() != nullptr) {
      stack.push_back({node->right().get(), false});
    }
  }
  return true;
}

SynopsisPtr SketchPropagator::Synopsis(const ExprPtr& node) {
  MNC_CHECK(node != nullptr);
  pinned_roots_.push_back(node);
  auto it = cache_.find(node.get());
  if (it != cache_.end()) return it->second;

  SynopsisPtr result;
  if (node->is_leaf()) {
    // Sketch-only leaves have no matrix to build a synopsis from; callers
    // fall back exactly as for an unsupported operator.
    if (!node->has_matrix()) return nullptr;
    result = estimator_->Build(node->matrix());
  } else {
    if (!estimator_->SupportsOp(node->op()) ||
        !estimator_->SupportsChains()) {
      return nullptr;
    }
    const SynopsisPtr left = Synopsis(node->left());
    if (left == nullptr) return nullptr;
    SynopsisPtr right;
    if (node->right() != nullptr) {
      right = Synopsis(node->right());
      if (right == nullptr) return nullptr;
    }
    result = estimator_->Propagate(node->op(), left, right, node->rows(),
                                   node->cols());
  }
  cache_.emplace(node.get(), result);
  return result;
}

std::optional<double> SketchPropagator::EstimateSparsity(
    const ExprPtr& root) {
  MNC_CHECK(root != nullptr);
  if (!Supports(root)) return std::nullopt;
  if (root->is_leaf()) {
    if (!root->has_matrix()) return std::nullopt;
    return root->matrix().Sparsity();
  }

  // Children are propagated; the root itself is estimated directly.
  const SynopsisPtr left = Synopsis(root->left());
  if (left == nullptr) return std::nullopt;
  SynopsisPtr right;
  if (root->right() != nullptr) {
    right = Synopsis(root->right());
    if (right == nullptr) return std::nullopt;
  }
  return estimator_->EstimateSparsity(root->op(), left, right, root->rows(),
                                      root->cols());
}

}  // namespace mnc
