// SparsEst benchmark use cases (§5, Table 2).
//
// Each builder constructs the inputs (synthetic per Table 2's "Data" column,
// with the real datasets replaced by the stand-ins of datasets.h) and the
// expression DAG of the use case. Dimensions default to laptop scale; the
// paper-scale values are noted per builder.

#ifndef MNC_SPARSEST_USECASES_H_
#define MNC_SPARSEST_USECASES_H_

#include <string>
#include <vector>

#include "mnc/ir/expr.h"
#include "mnc/util/random.h"

namespace mnc {

struct UseCase {
  std::string id;    // "B1.1"
  std::string name;  // "NLP"
  ExprPtr expr;      // the full expression

  // For chain use cases: the prefix intermediates the paper reports
  // individually (e.g., PG, PGG, PGGG, PGGGG for B3.3). Includes expr last.
  std::vector<ExprPtr> intermediates;

  // For B3.2-style all-subchain experiments: the chain inputs in order.
  std::vector<ExprPtr> chain_leaves;
};

// ---- B1 Struct: synthetic structured matrix products (§6.3) ----

// B1.1 NLP: X W — X one non-zero per row, power-law tokens, fraction
// `known_fraction` of known tokens; W dense with empty last row. Output
// sparsity is exactly known_fraction. Paper: 100K x 100K tokens, 300-dim.
UseCase MakeB11Nlp(Rng& rng, int64_t rows = 10000, int64_t dict_size = 10000,
                   int64_t embed_dim = 100, double known_fraction = 0.001);

// B1.2 Scale: diag(lambda) X — fully diagonal left input. Paper: 100K diag,
// 100K x 2K X with sparsity 0.01.
UseCase MakeB12Scale(Rng& rng, int64_t n = 10000, int64_t cols = 2000,
                     double sparsity = 0.01);

// B1.3 Perm: table(s1, s2) X — random permutation times X. Paper: 100K
// permutation, 100K x 2K X with sparsity 0.5.
UseCase MakeB13Perm(Rng& rng, int64_t n = 10000, int64_t cols = 2000,
                    double sparsity = 0.5);

// B1.4 Outer: C R — C a single dense column, R the aligned dense row;
// the product is fully dense. Paper: 100K x 100K.
UseCase MakeB14Outer(Rng& rng, int64_t n = 2000);

// B1.5 Inner: R C — the transposed special case; the product has a single
// non-zero. Paper: 100K x 100K.
UseCase MakeB15Inner(Rng& rng, int64_t n = 2000);

// ---- B2 Real: operations over dataset stand-ins (§6.3/§6.4) ----

// B2.1 NLP: X W over the AMin A stand-in (token sequences with pads).
UseCase MakeB21NlpReal(Rng& rng, int64_t rows = 100000,
                       int64_t dict_size = 20000, int64_t embed_dim = 100,
                       double unknown_fraction = 0.85);

// B2.2 Project: X P — column projection of Covertype's dummy-coded columns
// [11, 50] (0-based 10..49).
UseCase MakeB22Project(Rng& rng, int64_t rows = 50000);

// B2.3 CoRefG: G G^T co-reference counting on the citation-graph stand-in.
UseCase MakeB23CoRefGraph(Rng& rng, int64_t nodes = 20000,
                          double avg_degree = 8.0);

// B2.4 EmailG: G G on the email-graph stand-in.
UseCase MakeB24EmailGraph(Rng& rng, int64_t nodes = 20000);

// B2.5 Mask: M ⊙ X — image masking of Mnist-like data with the 14 x 14
// center mask.
UseCase MakeB25Mask(Rng& rng, int64_t rows = 20000);

// ---- B3 Chain: matrix expressions (§6.6) ----

// B3.1 NLP: reshape(X W) from token-embeddings to sentence-embeddings.
UseCase MakeB31NlpReshape(Rng& rng, int64_t sentences = 2000,
                          int64_t max_len = 40, int64_t dict_size = 20000,
                          int64_t embed_dim = 50,
                          double unknown_fraction = 0.85);

// B3.2 S&S: S^T X^T diag(w) X S B — deferred scale & shift. Transposed
// leaves are pre-folded so the chain is a pure 6-matrix product; the
// chain_leaves field carries S^T, X^T, diag(w), X, S, B in order.
// `covertype` switches X from the Mnist-like stand-in to the Covertype
// stand-in (§6.6 reports both variants for Fig. 15).
UseCase MakeB32ScaleShift(Rng& rng, int64_t rows = 20000,
                          bool covertype = false);

// B3.3 Graph: P G G G G — matrix powers of the citation graph with a top-k
// selection matrix P; intermediates holds PG, PGG, PGGG, PGGGG.
UseCase MakeB33GraphPowers(Rng& rng, int64_t nodes = 20000,
                           double avg_degree = 8.0, int64_t top_k = 200);

// B3.4 Rec: (P X != 0) ⊙ (P L R^T) — predicted recommendations for the
// known ratings of the top-k most active users.
UseCase MakeB34Recommend(Rng& rng, int64_t users = 10000,
                         int64_t items = 2000, int64_t rank = 20,
                         int64_t top_k = 1000);

// B3.5 Pred: X ⊙ ((R ⊙ S + T) != 0) — boolean predicate mask over
// Mnist-like images.
UseCase MakeB35Predicate(Rng& rng, int64_t rows = 20000);

}  // namespace mnc

#endif  // MNC_SPARSEST_USECASES_H_
