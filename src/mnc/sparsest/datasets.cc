#include "mnc/sparsest/datasets.h"

#include <algorithm>
#include <cmath>

#include "mnc/matrix/coo_matrix.h"
#include "mnc/matrix/generate.h"
#include "mnc/util/check.h"

namespace mnc {

CsrMatrix MakeTokenSequenceMatrix(int64_t rows, int64_t dict_size,
                                  double unknown_fraction, double zipf_skew,
                                  Rng& rng) {
  MNC_CHECK_GT(dict_size, 0);
  MNC_CHECK_GE(unknown_fraction, 0.0);
  MNC_CHECK_LE(unknown_fraction, 1.0);
  const int64_t cols = dict_size + 1;  // last column = unknown/pad
  ZipfDistribution token_dist(dict_size, zipf_skew);

  std::vector<int64_t> row_ptr(static_cast<size_t>(rows) + 1);
  std::vector<int64_t> col_idx(static_cast<size_t>(rows));
  std::vector<double> ones(static_cast<size_t>(rows), 1.0);
  for (int64_t i = 0; i <= rows; ++i) row_ptr[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < rows; ++i) {
    col_idx[static_cast<size_t>(i)] =
        rng.Bernoulli(unknown_fraction) ? dict_size : token_dist(rng);
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(ones));
}

DenseMatrix MakeEmbeddingMatrix(int64_t dict_size, int64_t embed_dim,
                                Rng& rng) {
  DenseMatrix w = GenerateDense(dict_size + 1, embed_dim, rng);
  // Empty last row: the unknown token maps to the zero vector.
  double* last = w.row(dict_size);
  for (int64_t j = 0; j < embed_dim; ++j) last[j] = 0.0;
  return w;
}

CsrMatrix MakeCitationGraph(int64_t nodes, double avg_degree, Rng& rng) {
  return GenerateGraphAdjacency(nodes, avg_degree, /*skew=*/1.1, rng);
}

CsrMatrix MakeEmailGraph(int64_t nodes, Rng& rng) {
  // The Email-EuAll network is sparser (~1.6 edges/node) and more skewed
  // (a few institutional hubs).
  return GenerateGraphAdjacency(nodes, /*avg_degree=*/1.6, /*skew=*/1.4, rng);
}

CsrMatrix MakeCovertypeLike(int64_t rows, Rng& rng) {
  constexpr int64_t kDenseCols = 10;
  constexpr int64_t kWildernessCats = 4;
  constexpr int64_t kSoilCats = 40;
  const int64_t cols = kDenseCols + kWildernessCats + kSoilCats;  // 54

  ZipfDistribution wilderness(kWildernessCats, 1.0);
  ZipfDistribution soil(kSoilCats, 1.2);

  CooMatrix coo(rows, cols);
  coo.Reserve(rows * (kDenseCols + 2));
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < kDenseCols; ++j) {
      coo.Add(i, j, rng.Uniform(0.5, 1.5));
    }
    coo.Add(i, kDenseCols + wilderness(rng), 1.0);
    coo.Add(i, kDenseCols + kWildernessCats + soil(rng), 1.0);
  }
  return coo.ToCsr();
}

CsrMatrix MakeMnistLike(int64_t rows, Rng& rng) {
  constexpr int64_t kDim = 28;
  constexpr int64_t kCols = kDim * kDim;  // 784
  constexpr double kTargetSparsity = 0.25;

  // Radial probability profile around the image center, normalized so the
  // mean probability equals the target sparsity.
  std::vector<double> prob(static_cast<size_t>(kCols));
  const double center = (static_cast<double>(kDim) - 1.0) / 2.0;
  const double sigma = 5.0;
  double total = 0.0;
  for (int64_t r = 0; r < kDim; ++r) {
    for (int64_t c = 0; c < kDim; ++c) {
      const double dr = static_cast<double>(r) - center;
      const double dc = static_cast<double>(c) - center;
      const double p = std::exp(-(dr * dr + dc * dc) / (2.0 * sigma * sigma));
      prob[static_cast<size_t>(r * kDim + c)] = p;
      total += p;
    }
  }
  const double scale =
      kTargetSparsity * static_cast<double>(kCols) / total;
  for (auto& p : prob) p = std::min(1.0, p * scale);

  CooMatrix coo(rows, kCols);
  coo.Reserve(static_cast<int64_t>(kTargetSparsity *
                                   static_cast<double>(rows * kCols)));
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < kCols; ++j) {
      if (rng.Bernoulli(prob[static_cast<size_t>(j)])) {
        coo.Add(i, j, rng.Uniform(0.5, 1.5));
      }
    }
  }
  return coo.ToCsr();
}

CsrMatrix MakeCenterMask(int64_t rows, int64_t image_dim,
                         int64_t center_dim) {
  MNC_CHECK_LE(center_dim, image_dim);
  const int64_t cols = image_dim * image_dim;
  const int64_t offset = (image_dim - center_dim) / 2;

  // One row's worth of mask columns, reused for every image.
  std::vector<int64_t> mask_cols;
  mask_cols.reserve(static_cast<size_t>(center_dim * center_dim));
  for (int64_t r = offset; r < offset + center_dim; ++r) {
    for (int64_t c = offset; c < offset + center_dim; ++c) {
      mask_cols.push_back(r * image_dim + c);
    }
  }
  std::sort(mask_cols.begin(), mask_cols.end());

  const int64_t per_row = static_cast<int64_t>(mask_cols.size());
  std::vector<int64_t> row_ptr(static_cast<size_t>(rows) + 1);
  std::vector<int64_t> col_idx;
  col_idx.reserve(static_cast<size_t>(rows * per_row));
  for (int64_t i = 0; i < rows; ++i) {
    row_ptr[static_cast<size_t>(i)] = i * per_row;
    col_idx.insert(col_idx.end(), mask_cols.begin(), mask_cols.end());
  }
  row_ptr[static_cast<size_t>(rows)] = rows * per_row;
  std::vector<double> ones(col_idx.size(), 1.0);
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(ones));
}

CsrMatrix MakeRatingsMatrix(int64_t users, int64_t items,
                            double avg_ratings_per_user, Rng& rng) {
  ZipfDistribution item_dist(items, 1.05);
  // User activity: Zipf-ish via a scaled rank weight, at least one rating.
  CooMatrix coo(users, items);
  const double total = avg_ratings_per_user * static_cast<double>(users);
  double weight_sum = 0.0;
  std::vector<double> weight(static_cast<size_t>(users));
  for (int64_t u = 0; u < users; ++u) {
    weight[static_cast<size_t>(u)] =
        1.0 / std::sqrt(static_cast<double>(u + 1));
    weight_sum += weight[static_cast<size_t>(u)];
  }
  for (int64_t u = 0; u < users; ++u) {
    const int64_t count = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               weight[static_cast<size_t>(u)] / weight_sum * total)));
    for (int64_t e = 0; e < count; ++e) {
      coo.Add(u, item_dist(rng), rng.Uniform(0.5, 1.5));
    }
  }
  return coo.ToCsr();
}

CsrMatrix MakeScaleShiftMatrix(int64_t n, Rng& rng) {
  CooMatrix coo(n, n);
  coo.Reserve(2 * n);
  for (int64_t i = 0; i < n; ++i) {
    if (i < n - 1) coo.Add(i, i, rng.Uniform(0.5, 1.5));  // scale factors
    coo.Add(n - 1, i, rng.Uniform(0.5, 1.5));             // shift row
  }
  return coo.ToCsr();
}

}  // namespace mnc
