#include "mnc/sparsest/usecases.h"

#include <algorithm>
#include <numeric>

#include "mnc/matrix/coo_matrix.h"
#include "mnc/matrix/generate.h"
#include "mnc/matrix/ops_reorg.h"
#include "mnc/sparsest/datasets.h"

namespace mnc {

namespace {

ExprPtr SparseLeaf(CsrMatrix m, std::string name) {
  return ExprNode::Leaf(Matrix::AutoFromCsr(std::move(m)), std::move(name));
}

ExprPtr DenseLeaf(DenseMatrix m, std::string name) {
  return ExprNode::Leaf(Matrix::AutoFromDense(std::move(m)), std::move(name));
}

// Indices of the k rows with the most non-zeros (ties by lower index).
std::vector<int64_t> TopKRowsByNnz(const CsrMatrix& m, int64_t k) {
  std::vector<int64_t> order(static_cast<size_t>(m.rows()));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::stable_sort(order.begin(), order.end(), [&m](int64_t a, int64_t b) {
    return m.RowNnz(a) > m.RowNnz(b);
  });
  order.resize(static_cast<size_t>(std::min(k, m.rows())));
  return order;
}

// n x n matrix whose column q is fully dense (B1.4/B1.5 "C").
CsrMatrix SingleDenseColumn(int64_t n, int64_t q, Rng& rng) {
  CooMatrix coo(n, n);
  coo.Reserve(n);
  for (int64_t i = 0; i < n; ++i) coo.Add(i, q, rng.Uniform(0.5, 1.5));
  return coo.ToCsr();
}

// n x n matrix whose row q is fully dense (B1.4/B1.5 "R").
CsrMatrix SingleDenseRow(int64_t n, int64_t q, Rng& rng) {
  CooMatrix coo(n, n);
  coo.Reserve(n);
  for (int64_t j = 0; j < n; ++j) coo.Add(q, j, rng.Uniform(0.5, 1.5));
  return coo.ToCsr();
}

}  // namespace

UseCase MakeB11Nlp(Rng& rng, int64_t rows, int64_t dict_size,
                   int64_t embed_dim, double known_fraction) {
  ExprPtr x = SparseLeaf(
      MakeTokenSequenceMatrix(rows, dict_size,
                              /*unknown_fraction=*/1.0 - known_fraction,
                              /*zipf_skew=*/1.1, rng),
      "X");
  ExprPtr w = DenseLeaf(MakeEmbeddingMatrix(dict_size, embed_dim, rng), "W");
  return {"B1.1", "NLP", ExprNode::MatMul(x, w), {}, {}};
}

UseCase MakeB12Scale(Rng& rng, int64_t n, int64_t cols, double sparsity) {
  ExprPtr d = SparseLeaf(GenerateDiagonal(n, rng), "diag(lambda)");
  ExprPtr x = SparseLeaf(GenerateUniformSparse(n, cols, sparsity, rng), "X");
  return {"B1.2", "Scale", ExprNode::MatMul(d, x), {}, {}};
}

UseCase MakeB13Perm(Rng& rng, int64_t n, int64_t cols, double sparsity) {
  ExprPtr p = SparseLeaf(GeneratePermutation(n, rng), "table(s1,s2)");
  ExprPtr x = SparseLeaf(GenerateUniformSparse(n, cols, sparsity, rng), "X");
  return {"B1.3", "Perm", ExprNode::MatMul(p, x), {}, {}};
}

UseCase MakeB14Outer(Rng& rng, int64_t n) {
  const int64_t q = n / 2;
  ExprPtr c = SparseLeaf(SingleDenseColumn(n, q, rng), "C");
  ExprPtr r = SparseLeaf(SingleDenseRow(n, q, rng), "R");
  return {"B1.4", "Outer", ExprNode::MatMul(c, r), {}, {}};
}

UseCase MakeB15Inner(Rng& rng, int64_t n) {
  const int64_t q = n / 2;
  ExprPtr r = SparseLeaf(SingleDenseRow(n, q, rng), "R");
  ExprPtr c = SparseLeaf(SingleDenseColumn(n, q, rng), "C");
  return {"B1.5", "Inner", ExprNode::MatMul(r, c), {}, {}};
}

UseCase MakeB21NlpReal(Rng& rng, int64_t rows, int64_t dict_size,
                       int64_t embed_dim, double unknown_fraction) {
  ExprPtr x = SparseLeaf(MakeTokenSequenceMatrix(rows, dict_size,
                                                 unknown_fraction,
                                                 /*zipf_skew=*/1.1, rng),
                         "X");
  ExprPtr w = DenseLeaf(MakeEmbeddingMatrix(dict_size, embed_dim, rng), "W");
  return {"B2.1", "NLP", ExprNode::MatMul(x, w), {}, {}};
}

UseCase MakeB22Project(Rng& rng, int64_t rows) {
  CsrMatrix cov = MakeCovertypeLike(rows, rng);
  // Projection onto the dummy-coded columns [10, 50) (the paper's 1-based
  // range [11, 50]): P is 54 x 40 with P[10 + t, t] = 1.
  CooMatrix p(cov.cols(), 40);
  for (int64_t t = 0; t < 40; ++t) p.Add(10 + t, t, 1.0);
  ExprPtr x = SparseLeaf(std::move(cov), "X");
  ExprPtr proj = SparseLeaf(p.ToCsr(), "P");
  return {"B2.2", "Project", ExprNode::MatMul(x, proj), {}, {}};
}

UseCase MakeB23CoRefGraph(Rng& rng, int64_t nodes, double avg_degree) {
  ExprPtr g = SparseLeaf(MakeCitationGraph(nodes, avg_degree, rng), "G");
  return {"B2.3", "CoRefG", ExprNode::MatMul(g, ExprNode::Transpose(g)),
          {},
          {}};
}

UseCase MakeB24EmailGraph(Rng& rng, int64_t nodes) {
  ExprPtr g = SparseLeaf(MakeEmailGraph(nodes, rng), "G");
  return {"B2.4", "EmailG", ExprNode::MatMul(g, g), {}, {}};
}

UseCase MakeB25Mask(Rng& rng, int64_t rows) {
  ExprPtr x = SparseLeaf(MakeMnistLike(rows, rng), "X");
  ExprPtr m = SparseLeaf(MakeCenterMask(rows), "M");
  return {"B2.5", "Mask", ExprNode::EWiseMult(m, x), {}, {}};
}

UseCase MakeB31NlpReshape(Rng& rng, int64_t sentences, int64_t max_len,
                          int64_t dict_size, int64_t embed_dim,
                          double unknown_fraction) {
  const int64_t rows = sentences * max_len;
  ExprPtr x = SparseLeaf(MakeTokenSequenceMatrix(rows, dict_size,
                                                 unknown_fraction,
                                                 /*zipf_skew=*/1.1, rng),
                         "X");
  ExprPtr w = DenseLeaf(MakeEmbeddingMatrix(dict_size, embed_dim, rng), "W");
  ExprPtr product = ExprNode::MatMul(x, w);
  return {"B3.1", "NLP",
          ExprNode::Reshape(product, sentences, max_len * embed_dim),
          {},
          {}};
}

UseCase MakeB32ScaleShift(Rng& rng, int64_t rows, bool covertype) {
  // X: Mnist-like (m x 784) or Covertype-like (m x 54) with an appended
  // column of ones.
  CsrMatrix x_raw =
      covertype ? MakeCovertypeLike(rows, rng) : MakeMnistLike(rows, rng);
  CooMatrix ones(rows, 1);
  ones.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) ones.Add(i, 0, 1.0);
  CsrMatrix x = CBindSparse(x_raw, ones.ToCsr());
  const int64_t n = x.cols();  // 785

  CsrMatrix s = MakeScaleShiftMatrix(n, rng);
  CsrMatrix w = GenerateDiagonal(rows, rng);  // diag(w), full weight diagonal
  DenseMatrix b = GenerateDense(n, 2, rng);

  // Transposed leaves are materialized up front (the §6.6 simplification),
  // making the chain a pure 6-matrix product.
  ExprPtr st = SparseLeaf(TransposeSparse(s), "S^T");
  ExprPtr xt = SparseLeaf(TransposeSparse(x), "X^T");
  ExprPtr dw = SparseLeaf(std::move(w), "diag(w)");
  ExprPtr xl = SparseLeaf(std::move(x), "X");
  ExprPtr sl = SparseLeaf(std::move(s), "S");
  ExprPtr bl = DenseLeaf(std::move(b), "B");

  UseCase uc;
  uc.id = "B3.2";
  uc.name = "S&S";
  uc.chain_leaves = {st, xt, dw, xl, sl, bl};
  ExprPtr acc = st;
  for (size_t i = 1; i < uc.chain_leaves.size(); ++i) {
    acc = ExprNode::MatMul(acc, uc.chain_leaves[i]);
    uc.intermediates.push_back(acc);
  }
  uc.expr = acc;
  return uc;
}

UseCase MakeB33GraphPowers(Rng& rng, int64_t nodes, double avg_degree,
                           int64_t top_k) {
  CsrMatrix g = MakeCitationGraph(nodes, avg_degree, rng);
  const std::vector<int64_t> top = TopKRowsByNnz(g, top_k);
  ExprPtr p = SparseLeaf(GenerateSelection(top, nodes), "P");
  ExprPtr gl = SparseLeaf(std::move(g), "G");

  UseCase uc;
  uc.id = "B3.3";
  uc.name = "Graph";
  uc.chain_leaves = {p, gl, gl, gl, gl};
  ExprPtr acc = ExprNode::MatMul(p, gl);  // PG
  uc.intermediates.push_back(acc);
  for (int hop = 0; hop < 3; ++hop) {
    acc = ExprNode::MatMul(acc, gl);  // PGG, PGGG, PGGGG
    uc.intermediates.push_back(acc);
  }
  uc.expr = acc;
  return uc;
}

UseCase MakeB34Recommend(Rng& rng, int64_t users, int64_t items, int64_t rank,
                         int64_t top_k) {
  CsrMatrix x = MakeRatingsMatrix(users, items, /*avg_ratings_per_user=*/3.0,
                                  rng);
  const std::vector<int64_t> top = TopKRowsByNnz(x, top_k);
  ExprPtr p = SparseLeaf(GenerateSelection(top, users), "P");
  ExprPtr xl = SparseLeaf(std::move(x), "X");
  // Low-rank factors with sparsity 0.95 / 0.85 (paper §6.6).
  ExprPtr l = DenseLeaf(GenerateAlmostDense(users, rank, 0.05, rng), "L");
  ExprPtr r = DenseLeaf(GenerateAlmostDense(items, rank, 0.15, rng), "R");

  ExprPtr known = ExprNode::NotEqualZero(ExprNode::MatMul(p, xl));
  ExprPtr predicted =
      ExprNode::MatMul(ExprNode::MatMul(p, l), ExprNode::Transpose(r));
  return {"B3.4", "Rec", ExprNode::EWiseMult(known, predicted), {}, {}};
}

UseCase MakeB35Predicate(Rng& rng, int64_t rows) {
  CsrMatrix x = MakeMnistLike(rows, rng);
  // T: data-dependent mask of high-intensity pixels (value > 1.4, ~10% of
  // the non-zeros — the analogue of X == 255).
  CooMatrix t_coo(rows, x.cols());
  for (int64_t i = 0; i < rows; ++i) {
    const auto idx = x.RowIndices(i);
    const auto val = x.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      if (val[k] > 1.4) t_coo.Add(i, idx[k], 1.0);
    }
  }
  ExprPtr r = SparseLeaf(MakeCenterMask(rows), "R");
  ExprPtr s = SparseLeaf(GenerateUniformSparse(rows, x.cols(), 0.1, rng),
                         "S");
  ExprPtr t = SparseLeaf(t_coo.ToCsr(), "T");
  ExprPtr xl = SparseLeaf(std::move(x), "X");

  ExprPtr mask = ExprNode::NotEqualZero(
      ExprNode::EWiseAdd(ExprNode::EWiseMult(r, s), t));
  return {"B3.5", "Pred", ExprNode::EWiseMult(xl, mask), {}, {}};
}

}  // namespace mnc
