// SparsEst benchmark metrics (§5).
//
// M1 accuracy uses the symmetric relative error
//   max(est, actual) / min(est, actual)  in [1, +inf),
// which, unlike the absolute ratio error, penalizes over- and
// under-estimation equally. Multiple experiments aggregate additively over
// estimated/actual non-zeros before the ratio is taken.

#ifndef MNC_SPARSEST_METRICS_H_
#define MNC_SPARSEST_METRICS_H_

#include <cstdint>

namespace mnc {

// Symmetric relative error; 1.0 when both are zero; +inf when exactly one
// is zero.
double RelativeError(double estimated, double actual);

// Additive aggregation over repetitions: sums estimated and actual
// quantities (sparsities or non-zero counts) and reports the relative error
// of the sums (§5, M1).
class RelativeErrorAggregator {
 public:
  void Add(double estimated, double actual) {
    estimated_sum_ += estimated;
    actual_sum_ += actual;
    ++count_;
  }

  int64_t count() const { return count_; }
  double Error() const;

 private:
  double estimated_sum_ = 0.0;
  double actual_sum_ = 0.0;
  int64_t count_ = 0;
};

}  // namespace mnc

#endif  // MNC_SPARSEST_METRICS_H_
