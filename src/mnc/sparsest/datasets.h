// Synthetic stand-ins for the real datasets of Table 3.
//
// The paper's original datasets (AMiner, Amazon, Covertype, Email-EuAll,
// Mnist1m) are not redistributable/available offline; each generator below
// reproduces the structural property the corresponding experiment exercises
// (see DESIGN.md §3 for the per-dataset rationale). All take a scale
// parameter so experiments run at laptop size; users with the original data
// can substitute Matrix-Market files via mnc/matrix/io.h.

#ifndef MNC_SPARSEST_DATASETS_H_
#define MNC_SPARSEST_DATASETS_H_

#include <cstdint>

#include "mnc/matrix/csr_matrix.h"
#include "mnc/matrix/dense_matrix.h"
#include "mnc/util/random.h"

namespace mnc {

// AMin A stand-in: padded token-sequence matrix with exactly one non-zero
// per row. A fraction (1 - unknown_fraction) of rows maps to a
// Zipf-distributed dictionary token; the rest map to the last ("unknown")
// column — pads and out-of-dictionary tokens, which dominate in the real
// AMin A because sentences are padded to the maximum length.
CsrMatrix MakeTokenSequenceMatrix(int64_t rows, int64_t dict_size,
                                  double unknown_fraction, double zipf_skew,
                                  Rng& rng);

// Pre-trained word-embedding matrix W: (dict_size + 1) x embed_dim, dense
// except an empty last row (the unknown token embeds to zero).
DenseMatrix MakeEmbeddingMatrix(int64_t dict_size, int64_t embed_dim,
                                Rng& rng);

// AMin R / Email stand-in: heavy-tailed directed graph adjacency.
CsrMatrix MakeCitationGraph(int64_t nodes, double avg_degree, Rng& rng);
CsrMatrix MakeEmailGraph(int64_t nodes, Rng& rng);

// Covertype stand-in: rows x 54 with 10 dense quantitative columns, a 4-way
// one-hot block (wilderness area) and a 40-way one-hot block (soil type);
// the categorical values are Zipf-distributed, giving columns of strongly
// varying sparsity. Overall sparsity = 12/54 ≈ 0.22, matching Table 3.
CsrMatrix MakeCovertypeLike(int64_t rows, Rng& rng);

// Mnist1m stand-in: rows x 784 images (28 x 28 row-major); non-zeros
// concentrate around the image center with radial falloff, overall sparsity
// ~0.25. Values in (0.5, 1.5] play the role of pixel intensities.
CsrMatrix MakeMnistLike(int64_t rows, Rng& rng);

// The 28 x 28 center mask of B2.5: every row is the indicator of the
// half_width x half_width center block (14 x 14 by default), replicated for
// `rows` images.
CsrMatrix MakeCenterMask(int64_t rows, int64_t image_dim = 28,
                         int64_t center_dim = 14);

// Amazon stand-in: ultra-sparse users x items rating matrix with Zipf user
// activity and Zipf item popularity.
CsrMatrix MakeRatingsMatrix(int64_t users, int64_t items,
                            double avg_ratings_per_user, Rng& rng);

// Scale-and-shift matrix S of B3.2: n x n with fully dense diagonal and
// dense last row (deferred scaling/shifting of X with an appended column of
// ones).
CsrMatrix MakeScaleShiftMatrix(int64_t n, Rng& rng);

}  // namespace mnc

#endif  // MNC_SPARSEST_DATASETS_H_
