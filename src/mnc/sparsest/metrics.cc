#include "mnc/sparsest/metrics.h"

#include <algorithm>
#include <limits>

namespace mnc {

double RelativeError(double estimated, double actual) {
  if (estimated == actual) return 1.0;  // covers the both-zero case
  if (estimated <= 0.0 || actual <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(estimated, actual) / std::min(estimated, actual);
}

double RelativeErrorAggregator::Error() const {
  return RelativeError(estimated_sum_, actual_sum_);
}

}  // namespace mnc
