// NEON kernels (aarch64). NEON is architectural on aarch64 so, unlike AVX2,
// no cpuid gate is needed — compiled in means runnable. aarch64 has a native
// exact int64 -> double convert (FCVTF via vcvtq_f64_s64), so the count
// conversion needs no bias trick. Same numeric contract as AVX2: identical
// to scalar except for dot-reduction reassociation (kernels.h).

#include "mnc/kernels/kernels_internal.h"

#if MNC_SIMD_HAVE_NEON

#include <arm_neon.h>

#include <bit>
#include <cmath>

namespace mnc {
namespace kernels {
namespace {

inline float64x2_t CvtCounts(const int64_t* p) {
  return vcvtq_f64_s64(vld1q_s64(p));
}

double DotCounts(const int64_t* u, const int64_t* v, int64_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc0 = vfmaq_f64(acc0, CvtCounts(u + k), CvtCounts(v + k));
    acc1 = vfmaq_f64(acc1, CvtCounts(u + k + 2), CvtCounts(v + k + 2));
  }
  // Fixed lane-order reduction. Note vfmaq fuses the multiply-add; the dot
  // contract already allows reduction-only differences from scalar, and the
  // fused product of integer-valued doubles below 2^53 is still exact.
  const float64x2_t acc01 = vaddq_f64(acc0, acc1);
  double acc = vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1);
  for (; k < n; ++k) {
    acc += static_cast<double>(u[k]) * static_cast<double>(v[k]);
  }
  return acc;
}

double DotCountsDiff(const int64_t* u, const int64_t* du, const int64_t* v,
                     int64_t n) {
  if (du == nullptr) return DotCounts(u, v, n);
  float64x2_t acc0 = vdupq_n_f64(0.0);
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const float64x2_t uk = vsubq_f64(CvtCounts(u + k), CvtCounts(du + k));
    acc0 = vfmaq_f64(acc0, uk, CvtCounts(v + k));
  }
  double acc = vgetq_lane_f64(acc0, 0) + vgetq_lane_f64(acc0, 1);
  for (; k < n; ++k) {
    acc += static_cast<double>(u[k] - du[k]) * static_cast<double>(v[k]);
  }
  return acc;
}

CombineAccum DensityCombine(const int64_t* u, const int64_t* du,
                            const int64_t* v, const int64_t* dv, int64_t n,
                            double p) {
  CombineAccum result;
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t pv = vdupq_n_f64(p);
  double cell[2];
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    float64x2_t uk = CvtCounts(u + k);
    float64x2_t vk = CvtCounts(v + k);
    if (du != nullptr) uk = vsubq_f64(uk, CvtCounts(du + k));
    if (dv != nullptr) vk = vsubq_f64(vk, CvtCounts(dv + k));
    const uint64x2_t live =
        vandq_u64(vcgtq_f64(uk, zero), vcgtq_f64(vk, zero));
    const uint64_t live0 = vgetq_lane_u64(live, 0);
    const uint64_t live1 = vgetq_lane_u64(live, 1);
    if ((live0 | live1) == 0) continue;
    // Same rounding sequence as scalar: (uk * vk), then / p, then min.
    const float64x2_t q = vdivq_f64(vmulq_f64(uk, vk), pv);
    const float64x2_t c = vminq_f64(one, q);
    const uint64x2_t certain = vandq_u64(live, vcgeq_f64(c, one));
    if ((vgetq_lane_u64(certain, 0) | vgetq_lane_u64(certain, 1)) != 0) {
      result.certain = true;  // callers ignore log_zero_prob (Eq. 4 break)
      return result;
    }
    vst1q_f64(cell, c);
    if (live0) result.log_zero_prob += std::log1p(-cell[0]);
    if (live1) result.log_zero_prob += std::log1p(-cell[1]);
  }
  for (; k < n; ++k) {
    double uk = static_cast<double>(u[k]);
    double vk = static_cast<double>(v[k]);
    if (du != nullptr) uk -= static_cast<double>(du[k]);
    if (dv != nullptr) vk -= static_cast<double>(dv[k]);
    if (uk <= 0.0 || vk <= 0.0) continue;
    const double cell_prob = std::min(1.0, uk * vk / p);
    if (cell_prob >= 1.0) {
      result.certain = true;
      return result;
    }
    result.log_zero_prob += std::log1p(-cell_prob);
  }
  return result;
}

void ScaleCounts(const int64_t* counts, int64_t n, double scale, double* out) {
  const float64x2_t s = vdupq_n_f64(scale);
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    vst1q_f64(out + k, vmulq_f64(CvtCounts(counts + k), s));
  }
  for (; k < n; ++k) out[k] = static_cast<double>(counts[k]) * scale;
}

void EWiseMultEst(const int64_t* a, const int64_t* b, int64_t n, double lambda,
                  double* out) {
  const float64x2_t lam = vdupq_n_f64(lambda);
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const float64x2_t ha = CvtCounts(a + k);
    const float64x2_t hb = CvtCounts(b + k);
    const float64x2_t coll = vmulq_f64(vmulq_f64(ha, hb), lam);
    vst1q_f64(out + k, vminq_f64(coll, vminq_f64(ha, hb)));
  }
  for (; k < n; ++k) {
    const double ha = static_cast<double>(a[k]);
    const double hb = static_cast<double>(b[k]);
    out[k] = std::min(ha * hb * lambda, std::min(ha, hb));
  }
}

void EWiseAddEst(const int64_t* a, const int64_t* b, int64_t n, double lambda,
                 double cap, double* out) {
  const float64x2_t lam = vdupq_n_f64(lambda);
  const float64x2_t hi = vdupq_n_f64(cap);
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const float64x2_t ha = CvtCounts(a + k);
    const float64x2_t hb = CvtCounts(b + k);
    const float64x2_t coll =
        vminq_f64(vmulq_f64(vmulq_f64(ha, hb), lam), vminq_f64(ha, hb));
    const float64x2_t est = vsubq_f64(vaddq_f64(ha, hb), coll);
    const float64x2_t lo = vmaxq_f64(ha, hb);
    vst1q_f64(out + k, vminq_f64(vmaxq_f64(est, lo), hi));
  }
  for (; k < n; ++k) {
    const double ha = static_cast<double>(a[k]);
    const double hb = static_cast<double>(b[k]);
    const double collisions = std::min(ha * hb * lambda, std::min(ha, hb));
    out[k] = std::clamp(ha + hb - collisions, std::max(ha, hb), cap);
  }
}

void OrInto(uint64_t* dst, const uint64_t* src, int64_t n) {
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    vst1q_u64(dst + k, vorrq_u64(vld1q_u64(dst + k), vld1q_u64(src + k)));
  }
  for (; k < n; ++k) dst[k] |= src[k];
}

void OrWords(uint64_t* dst, const uint64_t* a, const uint64_t* b, int64_t n) {
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    vst1q_u64(dst + k, vorrq_u64(vld1q_u64(a + k), vld1q_u64(b + k)));
  }
  for (; k < n; ++k) dst[k] = a[k] | b[k];
}

void AndWords(uint64_t* dst, const uint64_t* a, const uint64_t* b, int64_t n) {
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    vst1q_u64(dst + k, vandq_u64(vld1q_u64(a + k), vld1q_u64(b + k)));
  }
  for (; k < n; ++k) dst[k] = a[k] & b[k];
}

// Set bits in one 128-bit chunk: per-byte CNT summed across the vector.
inline int64_t Popcount128(uint64x2_t v) {
  return static_cast<int64_t>(vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))));
}

int64_t PopCountWords(const uint64_t* w, int64_t n) {
  int64_t count = 0;
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) count += Popcount128(vld1q_u64(w + k));
  for (; k < n; ++k) count += std::popcount(w[k]);
  return count;
}

int64_t AndPopCountWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  int64_t count = 0;
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    count += Popcount128(vandq_u64(vld1q_u64(a + k), vld1q_u64(b + k)));
  }
  for (; k < n; ++k) count += std::popcount(a[k] & b[k]);
  return count;
}

const KernelTable kNeonTable = {
    DotCounts,    DotCountsDiff, DensityCombine, ScaleCounts,
    EWiseMultEst, EWiseAddEst,   OrInto,         OrWords,
    AndWords,     PopCountWords, AndPopCountWords,
};

}  // namespace

namespace internal {
const KernelTable* GetNeonKernelTable() { return &kNeonTable; }
}  // namespace internal

}  // namespace kernels
}  // namespace mnc

#else  // !MNC_SIMD_HAVE_NEON

namespace mnc {
namespace kernels {
namespace internal {
const KernelTable* GetNeonKernelTable() { return nullptr; }
}  // namespace internal
}  // namespace kernels
}  // namespace mnc

#endif  // MNC_SIMD_HAVE_NEON
