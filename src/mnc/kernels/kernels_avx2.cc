// AVX2 kernels (x86-64). Compiled into every x86-64 build via per-function
// target attributes — no global -mavx2 needed — and selected at runtime only
// when cpuid reports AVX2 (mnc/util/simd.h). Numeric contract: identical to
// scalar except for dot-reduction reassociation; see kernels.h.
//
// int64 counts are converted to double with the 2^52 bias trick (AVX2 has no
// vcvtqq2pd), which is exact for counts in [0, 2^52) — the documented kernel
// precondition. The conversion, subtraction, multiply, divide and min each
// perform the same single IEEE rounding as their scalar counterparts, so all
// elementwise kernels match scalar bit-for-bit.

#include "mnc/kernels/kernels_internal.h"

#if MNC_SIMD_HAVE_AVX2

#include <immintrin.h>

#include <bit>
#include <cmath>

#define MNC_AVX2_FN __attribute__((target("avx2,popcnt")))

namespace mnc {
namespace kernels {
namespace {

// Exact int64 -> double conversion for values in [0, 2^52).
MNC_AVX2_FN inline __m256d CvtCounts(__m256i x) {
  const __m256d bias = _mm256_set1_pd(4503599627370496.0);  // 2^52
  const __m256i biased = _mm256_or_si256(x, _mm256_castpd_si256(bias));
  return _mm256_sub_pd(_mm256_castsi256_pd(biased), bias);
}

MNC_AVX2_FN inline __m256i LoadI64(const int64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

// Sums the four lanes in ascending lane order (fixed, thread-invariant).
MNC_AVX2_FN inline double ReduceLanesOrdered(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

MNC_AVX2_FN double DotCounts(const int64_t* u, const int64_t* v, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256d u0 = CvtCounts(LoadI64(u + k));
    const __m256d u1 = CvtCounts(LoadI64(u + k + 4));
    const __m256d v0 = CvtCounts(LoadI64(v + k));
    const __m256d v1 = CvtCounts(LoadI64(v + k + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(u0, v0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(u1, v1));
  }
  double acc = ReduceLanesOrdered(_mm256_add_pd(acc0, acc1));
  for (; k < n; ++k) {
    acc += static_cast<double>(u[k]) * static_cast<double>(v[k]);
  }
  return acc;
}

MNC_AVX2_FN double DotCountsDiff(const int64_t* u, const int64_t* du,
                                 const int64_t* v, int64_t n) {
  if (du == nullptr) return DotCounts(u, v, n);
  __m256d acc0 = _mm256_setzero_pd();
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // Convert-then-subtract: exact for counts < 2^52 (any sign of the
    // difference), hence identical to the scalar int-subtract-then-convert.
    const __m256d uk =
        _mm256_sub_pd(CvtCounts(LoadI64(u + k)), CvtCounts(LoadI64(du + k)));
    const __m256d vk = CvtCounts(LoadI64(v + k));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(uk, vk));
  }
  double acc = ReduceLanesOrdered(acc0);
  for (; k < n; ++k) {
    acc += static_cast<double>(u[k] - du[k]) * static_cast<double>(v[k]);
  }
  return acc;
}

MNC_AVX2_FN CombineAccum DensityCombine(const int64_t* u, const int64_t* du,
                                        const int64_t* v, const int64_t* dv,
                                        int64_t n, double p) {
  CombineAccum result;
  const __m256i zero_i = _mm256_setzero_si256();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d pv = _mm256_set1_pd(p);
  alignas(32) double cell[4];
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m256i iu = LoadI64(u + k);
    __m256i iv = LoadI64(v + k);
    if (du != nullptr) iu = _mm256_sub_epi64(iu, LoadI64(du + k));
    if (dv != nullptr) iv = _mm256_sub_epi64(iv, LoadI64(dv + k));
    // Liveness in the integer domain: int64 subtraction is exact and the
    // scalar double compare sees exactly-converted integers, so (count > 0)
    // agrees bit-for-bit — and all-dead groups (the common case on
    // hyper-sparse count vectors) skip the convert/divide pipeline
    // entirely.
    const __m256i live_i = _mm256_and_si256(_mm256_cmpgt_epi64(iu, zero_i),
                                            _mm256_cmpgt_epi64(iv, zero_i));
    const __m256d live = _mm256_castsi256_pd(live_i);
    const int live_mask = _mm256_movemask_pd(live);
    if (live_mask == 0) continue;  // all lanes skipped, as in scalar
    // CvtCounts is exact only for non-negative inputs; a negative
    // difference in a dead lane converts to garbage, but every use below is
    // masked by `live`.
    const __m256d uk = CvtCounts(iu);
    const __m256d vk = CvtCounts(iv);
    // Same rounding sequence as scalar: (uk * vk), then / p, then min.
    const __m256d q = _mm256_div_pd(_mm256_mul_pd(uk, vk), pv);
    const __m256d c = _mm256_min_pd(one, q);
    const int certain_mask = _mm256_movemask_pd(
        _mm256_and_pd(live, _mm256_cmp_pd(c, one, _CMP_GE_OQ)));
    if (certain_mask != 0) {
      // A certain hit ends the scan; callers ignore log_zero_prob (Eq. 4
      // early break).
      result.certain = true;
      return result;
    }
    _mm256_store_pd(cell, c);
    for (int lane = 0; lane < 4; ++lane) {
      if (live_mask & (1 << lane)) {
        result.log_zero_prob += std::log1p(-cell[lane]);
      }
    }
  }
  for (; k < n; ++k) {
    double uk = static_cast<double>(u[k]);
    double vk = static_cast<double>(v[k]);
    if (du != nullptr) uk -= static_cast<double>(du[k]);
    if (dv != nullptr) vk -= static_cast<double>(dv[k]);
    if (uk <= 0.0 || vk <= 0.0) continue;
    const double cell_prob = std::min(1.0, uk * vk / p);
    if (cell_prob >= 1.0) {
      result.certain = true;
      return result;
    }
    result.log_zero_prob += std::log1p(-cell_prob);
  }
  return result;
}

MNC_AVX2_FN void ScaleCounts(const int64_t* counts, int64_t n, double scale,
                             double* out) {
  const __m256d s = _mm256_set1_pd(scale);
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    _mm256_storeu_pd(out + k, _mm256_mul_pd(CvtCounts(LoadI64(counts + k)), s));
  }
  for (; k < n; ++k) out[k] = static_cast<double>(counts[k]) * scale;
}

MNC_AVX2_FN void EWiseMultEst(const int64_t* a, const int64_t* b, int64_t n,
                              double lambda, double* out) {
  const __m256d lam = _mm256_set1_pd(lambda);
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d ha = CvtCounts(LoadI64(a + k));
    const __m256d hb = CvtCounts(LoadI64(b + k));
    const __m256d coll = _mm256_mul_pd(_mm256_mul_pd(ha, hb), lam);
    _mm256_storeu_pd(out + k,
                     _mm256_min_pd(coll, _mm256_min_pd(ha, hb)));
  }
  for (; k < n; ++k) {
    const double ha = static_cast<double>(a[k]);
    const double hb = static_cast<double>(b[k]);
    out[k] = std::min(ha * hb * lambda, std::min(ha, hb));
  }
}

MNC_AVX2_FN void EWiseAddEst(const int64_t* a, const int64_t* b, int64_t n,
                             double lambda, double cap, double* out) {
  const __m256d lam = _mm256_set1_pd(lambda);
  const __m256d hi = _mm256_set1_pd(cap);
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d ha = CvtCounts(LoadI64(a + k));
    const __m256d hb = CvtCounts(LoadI64(b + k));
    const __m256d coll = _mm256_min_pd(_mm256_mul_pd(_mm256_mul_pd(ha, hb), lam),
                                       _mm256_min_pd(ha, hb));
    const __m256d est = _mm256_sub_pd(_mm256_add_pd(ha, hb), coll);
    const __m256d lo = _mm256_max_pd(ha, hb);
    _mm256_storeu_pd(out + k, _mm256_min_pd(_mm256_max_pd(est, lo), hi));
  }
  for (; k < n; ++k) {
    const double ha = static_cast<double>(a[k]);
    const double hb = static_cast<double>(b[k]);
    const double collisions = std::min(ha * hb * lambda, std::min(ha, hb));
    out[k] = std::clamp(ha + hb - collisions, std::max(ha, hb), cap);
  }
}

MNC_AVX2_FN inline __m256i LoadU64(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

MNC_AVX2_FN inline void StoreU64(uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

MNC_AVX2_FN void OrInto(uint64_t* dst, const uint64_t* src, int64_t n) {
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    StoreU64(dst + k, _mm256_or_si256(LoadU64(dst + k), LoadU64(src + k)));
  }
  for (; k < n; ++k) dst[k] |= src[k];
}

MNC_AVX2_FN void OrWords(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                         int64_t n) {
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    StoreU64(dst + k, _mm256_or_si256(LoadU64(a + k), LoadU64(b + k)));
  }
  for (; k < n; ++k) dst[k] = a[k] | b[k];
}

MNC_AVX2_FN void AndWords(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                          int64_t n) {
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    StoreU64(dst + k, _mm256_and_si256(LoadU64(a + k), LoadU64(b + k)));
  }
  for (; k < n; ++k) dst[k] = a[k] & b[k];
}

// Per-byte popcount of a 256-bit vector via the nibble lookup, horizontally
// summed into four u64 lanes (Muła's method).
MNC_AVX2_FN inline __m256i PopcountLanes(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

MNC_AVX2_FN inline int64_t ReduceLanesI64(__m256i v) {
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

MNC_AVX2_FN int64_t PopCountWords(const uint64_t* w, int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc = _mm256_add_epi64(acc, PopcountLanes(LoadU64(w + k)));
  }
  int64_t count = ReduceLanesI64(acc);
  for (; k < n; ++k) count += std::popcount(w[k]);
  return count;
}

MNC_AVX2_FN int64_t AndPopCountWords(const uint64_t* a, const uint64_t* b,
                                     int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  int64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc = _mm256_add_epi64(
        acc, PopcountLanes(_mm256_and_si256(LoadU64(a + k), LoadU64(b + k))));
  }
  int64_t count = ReduceLanesI64(acc);
  for (; k < n; ++k) count += std::popcount(a[k] & b[k]);
  return count;
}

const KernelTable kAvx2Table = {
    DotCounts,    DotCountsDiff, DensityCombine, ScaleCounts,
    EWiseMultEst, EWiseAddEst,   OrInto,         OrWords,
    AndWords,     PopCountWords, AndPopCountWords,
};

}  // namespace

namespace internal {
const KernelTable* GetAvx2KernelTable() { return &kAvx2Table; }
}  // namespace internal

}  // namespace kernels
}  // namespace mnc

#else  // !MNC_SIMD_HAVE_AVX2

namespace mnc {
namespace kernels {
namespace internal {
const KernelTable* GetAvx2KernelTable() { return nullptr; }
}  // namespace internal
}  // namespace kernels
}  // namespace mnc

#endif  // MNC_SIMD_HAVE_AVX2
