// Internal wiring between the kernel backends and the dispatcher. Each
// backend TU defines its Get*KernelTable() to return its table, or nullptr
// when the backend is not compiled into this build (the dispatcher then
// falls back to scalar).

#ifndef MNC_KERNELS_KERNELS_INTERNAL_H_
#define MNC_KERNELS_KERNELS_INTERNAL_H_

#include "mnc/kernels/kernels.h"

namespace mnc {
namespace kernels {
namespace internal {

const KernelTable* GetScalarKernelTable();  // never nullptr
const KernelTable* GetAvx2KernelTable();
const KernelTable* GetNeonKernelTable();

}  // namespace internal
}  // namespace kernels
}  // namespace mnc

#endif  // MNC_KERNELS_KERNELS_INTERNAL_H_
