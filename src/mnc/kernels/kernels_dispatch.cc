// Kernel dispatch: resolves the active KernelTable once per process from
// BestSupportedSimdLevel() (which itself honors the MNC_SIMD env override),
// with an atomic test/bench override installed by ScopedForceKernels.

#include <atomic>

#include "mnc/kernels/kernels_internal.h"

namespace mnc {
namespace kernels {
namespace {

struct LevelTable {
  const KernelTable* table;
  SimdLevel level;  // level the table actually implements (after fallback)
};

LevelTable Resolve(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      if (const KernelTable* t = internal::GetAvx2KernelTable();
          t != nullptr && SimdLevelSupported(SimdLevel::kAvx2)) {
        return {t, SimdLevel::kAvx2};
      }
      break;
    case SimdLevel::kNeon:
      if (const KernelTable* t = internal::GetNeonKernelTable();
          t != nullptr && SimdLevelSupported(SimdLevel::kNeon)) {
        return {t, SimdLevel::kNeon};
      }
      break;
    case SimdLevel::kScalar:
      break;
  }
  return {internal::GetScalarKernelTable(), SimdLevel::kScalar};
}

const LevelTable& Dispatched() {
  static const LevelTable resolved = Resolve(BestSupportedSimdLevel());
  return resolved;
}

// ScopedForceKernels override. Encoded as level+1 so 0 means "no override";
// published atomically for concurrent kernel callers.
std::atomic<int> g_forced_level{0};

// Calibration-tuned table (per-kernel scalar/SIMD verdicts). Lower
// precedence than the forced override so tests that pin a level still pin
// every kernel.
std::atomic<const KernelTable*> g_tuned_table{nullptr};

}  // namespace

const KernelTable& ScalarKernels() { return *internal::GetScalarKernelTable(); }

const KernelTable& KernelsForLevel(SimdLevel level) {
  return *Resolve(level).table;
}

const KernelTable& Active() {
  const int forced = g_forced_level.load(std::memory_order_acquire);
  if (forced != 0) {
    return *Resolve(static_cast<SimdLevel>(forced - 1)).table;
  }
  if (const KernelTable* tuned = g_tuned_table.load(std::memory_order_acquire);
      tuned != nullptr) {
    return *tuned;
  }
  return *Dispatched().table;
}

void SetTunedKernelTable(const KernelTable* table) {
  g_tuned_table.store(table, std::memory_order_release);
}

const KernelTable* TunedKernelTable() {
  return g_tuned_table.load(std::memory_order_acquire);
}

SimdLevel ActiveLevel() {
  const int forced = g_forced_level.load(std::memory_order_acquire);
  if (forced != 0) {
    return Resolve(static_cast<SimdLevel>(forced - 1)).level;
  }
  return Dispatched().level;
}

ScopedForceKernels::ScopedForceKernels(SimdLevel level) {
  const int previous = g_forced_level.load(std::memory_order_acquire);
  had_previous_ = previous != 0;
  previous_ = had_previous_ ? static_cast<SimdLevel>(previous - 1)
                            : SimdLevel::kScalar;
  g_forced_level.store(static_cast<int>(level) + 1, std::memory_order_release);
}

ScopedForceKernels::~ScopedForceKernels() {
  g_forced_level.store(had_previous_ ? static_cast<int>(previous_) + 1 : 0,
                       std::memory_order_release);
}

}  // namespace kernels
}  // namespace mnc
