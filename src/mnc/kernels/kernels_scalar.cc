// Portable reference kernels. Every other backend must agree with these:
// bit-for-bit on the integer/bitset/elementwise kernels, and up to float
// reassociation (exact below 2^53 — see kernels.h) on the dot reductions.
// The loop bodies are verbatim ports of the pre-SIMD inner loops in
// mnc_estimator.cc / mnc_propagation.cc / bitset_estimator.cc, which is what
// keeps default scalar results bit-identical across releases.

#include <bit>
#include <cmath>

#include "mnc/kernels/kernels_internal.h"

namespace mnc {
namespace kernels {
namespace {

double DotCounts(const int64_t* u, const int64_t* v, int64_t n) {
  double acc = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    acc += static_cast<double>(u[k]) * static_cast<double>(v[k]);
  }
  return acc;
}

double DotCountsDiff(const int64_t* u, const int64_t* du, const int64_t* v,
                     int64_t n) {
  if (du == nullptr) return DotCounts(u, v, n);
  double acc = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    acc += static_cast<double>(u[k] - du[k]) * static_cast<double>(v[k]);
  }
  return acc;
}

CombineAccum DensityCombine(const int64_t* u, const int64_t* du,
                            const int64_t* v, const int64_t* dv, int64_t n,
                            double p) {
  CombineAccum result;
  for (int64_t k = 0; k < n; ++k) {
    double uk = static_cast<double>(u[k]);
    double vk = static_cast<double>(v[k]);
    if (du != nullptr) uk -= static_cast<double>(du[k]);
    if (dv != nullptr) vk -= static_cast<double>(dv[k]);
    if (uk <= 0.0 || vk <= 0.0) continue;
    const double cell_prob = std::min(1.0, uk * vk / p);
    if (cell_prob >= 1.0) {
      result.certain = true;
      break;
    }
    result.log_zero_prob += std::log1p(-cell_prob);
  }
  return result;
}

void ScaleCounts(const int64_t* counts, int64_t n, double scale, double* out) {
  for (int64_t k = 0; k < n; ++k) {
    out[k] = static_cast<double>(counts[k]) * scale;
  }
}

void EWiseMultEst(const int64_t* a, const int64_t* b, int64_t n, double lambda,
                  double* out) {
  for (int64_t k = 0; k < n; ++k) {
    const double ha = static_cast<double>(a[k]);
    const double hb = static_cast<double>(b[k]);
    out[k] = std::min(ha * hb * lambda, std::min(ha, hb));
  }
}

void EWiseAddEst(const int64_t* a, const int64_t* b, int64_t n, double lambda,
                 double cap, double* out) {
  for (int64_t k = 0; k < n; ++k) {
    const double ha = static_cast<double>(a[k]);
    const double hb = static_cast<double>(b[k]);
    const double collisions = std::min(ha * hb * lambda, std::min(ha, hb));
    out[k] = std::clamp(ha + hb - collisions, std::max(ha, hb), cap);
  }
}

void OrInto(uint64_t* dst, const uint64_t* src, int64_t n) {
  for (int64_t k = 0; k < n; ++k) dst[k] |= src[k];
}

void OrWords(uint64_t* dst, const uint64_t* a, const uint64_t* b, int64_t n) {
  for (int64_t k = 0; k < n; ++k) dst[k] = a[k] | b[k];
}

void AndWords(uint64_t* dst, const uint64_t* a, const uint64_t* b, int64_t n) {
  for (int64_t k = 0; k < n; ++k) dst[k] = a[k] & b[k];
}

int64_t PopCountWords(const uint64_t* w, int64_t n) {
  int64_t count = 0;
  for (int64_t k = 0; k < n; ++k) count += std::popcount(w[k]);
  return count;
}

int64_t AndPopCountWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  int64_t count = 0;
  for (int64_t k = 0; k < n; ++k) count += std::popcount(a[k] & b[k]);
  return count;
}

const KernelTable kScalarTable = {
    DotCounts,    DotCountsDiff, DensityCombine, ScaleCounts,
    EWiseMultEst, EWiseAddEst,   OrInto,         OrWords,
    AndWords,     PopCountWords, AndPopCountWords,
};

}  // namespace

namespace internal {
const KernelTable* GetScalarKernelTable() { return &kScalarTable; }
}  // namespace internal

}  // namespace kernels
}  // namespace mnc
