// Vectorized kernel layer for the estimator / SpGEMM hot loops.
//
// The library's five hottest inner loops — the Algorithm 1 histogram dot
// products (Thm 3.1 / Eq. 8), the density-map combine (Eq. 4), the bitset
// word AND/OR + popcount (Eq. 3), the Eq. 11/15 propagation scaling, and the
// Gustavson SpGEMM row scatter/gather — are expressed here as flat
// pointer-based kernels. The data-parallel ones are dispatched through a
// per-process function table (scalar / AVX2 / NEON — see mnc/util/simd.h);
// the scatter-bound SpGEMM row kernels are deliberately scalar on every
// level (AVX2 has no scatter store) and live here so the four previously
// duplicated loops share one implementation.
//
// Determinism contract, per kernel:
//   * dot_counts / dot_counts_diff: vector levels use multiple accumulators,
//     so the result may differ from scalar by float reassociation only. The
//     summands are products of integer counts, hence integer-valued doubles:
//     whenever every partial sum stays below 2^53 the reduction is EXACT and
//     therefore bit-identical across levels (true for all realistic
//     sketches; the differential harness asserts it).
//   * density_combine: bit-identical across levels by construction. The
//     vector path only evaluates the elementwise prologue (convert,
//     subtract, multiply, divide, min — each a single correctly-rounded IEEE
//     operation, identical to scalar); the log1p accumulation runs in scalar
//     source order on the surviving lanes.
//   * scale_counts / ewise_*_est: purely elementwise with the same rounding
//     sequence per element — bit-identical across levels.
//   * bitset word kernels: integer — bit-identical across levels.
//
// Precondition shared by the count kernels: counts are non-negative and
// < 2^51 (the AVX2 int64->double conversion uses the 2^52 bias trick).
// MncSketch count vectors satisfy this by construction for any matrix whose
// dimensions fit in 2^51.

#ifndef MNC_KERNELS_KERNELS_H_
#define MNC_KERNELS_KERNELS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mnc/util/simd.h"

namespace mnc {
namespace kernels {

// Result of a density-map combine range: the log-space zero-probability
// accumulated over the range, and whether a certain hit (cell_prob >= 1)
// ended the scan early. When `certain` is true the caller must treat the
// range as probability-1 and ignore `log_zero_prob` (matching the scalar
// early break in Eq. 4).
struct CombineAccum {
  double log_zero_prob = 0.0;
  bool certain = false;
};

// The dispatchable kernel table. All pointers are non-null in every table.
struct KernelTable {
  // sum_k double(u[k]) * double(v[k]).
  double (*dot_counts)(const int64_t* u, const int64_t* v, int64_t n);

  // sum_k (double(u[k]) - double(du[k])) * double(v[k]); du == nullptr is
  // treated as all zeros (then identical to dot_counts).
  double (*dot_counts_diff)(const int64_t* u, const int64_t* du,
                            const int64_t* v, int64_t n);

  // Eq. 4 over [0, n): for each k with (u[k]-du[k]) > 0 and (v[k]-dv[k]) > 0
  // accumulates log1p(-min(1, (u-du)(v-dv)/p)) in index order; stops at the
  // first certain hit. du/dv may be nullptr (no offsets). Requires p > 0.
  CombineAccum (*density_combine)(const int64_t* u, const int64_t* du,
                                  const int64_t* v, const int64_t* dv,
                                  int64_t n, double p);

  // Eq. 11 staging: out[k] = double(counts[k]) * scale (one rounding per
  // element; the caller rounds/clamps, keeping the PRNG order scalar).
  void (*scale_counts)(const int64_t* counts, int64_t n, double scale,
                       double* out);

  // Eq. 15 elementwise collision estimates (ha = double(a[k]), hb likewise):
  //   mult: out[k] = min((ha * hb) * lambda, min(ha, hb))
  //   add:  out[k] = clamp(ha + hb - mult[k], max(ha, hb), cap)
  // Multiplication order is fixed as (ha * hb) * lambda to match the scalar
  // propagation loops bit-for-bit.
  void (*ewise_mult_est)(const int64_t* a, const int64_t* b, int64_t n,
                         double lambda, double* out);
  void (*ewise_add_est)(const int64_t* a, const int64_t* b, int64_t n,
                        double lambda, double cap, double* out);

  // dst[k] |= src[k]. dst and src must not partially overlap.
  void (*or_into)(uint64_t* dst, const uint64_t* src, int64_t n);

  // dst[k] = a[k] | b[k] and dst[k] = a[k] & b[k].
  void (*or_words)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   int64_t n);
  void (*and_words)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    int64_t n);

  // Total set bits of w[0..n); fused popcount(a[k] & b[k]) without
  // materializing the AND (Eq. 3 row intersection).
  int64_t (*popcount_words)(const uint64_t* w, int64_t n);
  int64_t (*and_popcount_words)(const uint64_t* a, const uint64_t* b,
                                int64_t n);
};

// The portable reference table (always available; the baseline every other
// level must agree with).
const KernelTable& ScalarKernels();

// The table for a specific level; falls back to ScalarKernels() when the
// level is not compiled in or not runnable on this CPU.
const KernelTable& KernelsForLevel(SimdLevel level);

// The dispatched table: KernelsForLevel(BestSupportedSimdLevel()), resolved
// once per process. Overrides take precedence in this order:
// ScopedForceKernels (tests/benches) > tuned table (calibration profile,
// see mnc/tuning/machine_profile.h) > dispatched.
const KernelTable& Active();

// The level Active() currently resolves to (reflects a ScopedForceKernels
// override; a tuned table mixes levels per kernel and reports the
// dispatched level it was built from).
SimdLevel ActiveLevel();

// Installs a per-kernel tuned table from a calibration profile (nullptr
// uninstalls). The pointer must stay valid until replaced — the tuning
// layer keeps the storage alive for the process lifetime. Like
// ScopedForceKernels, publication is atomic but not synchronized against
// in-flight kernels: install before spawning parallel work. Every entry of
// a tuned table computes bit-identical results to every other table (the
// per-kernel determinism contract above), so swapping it never changes
// output, only throughput.
void SetTunedKernelTable(const KernelTable* table);
const KernelTable* TunedKernelTable();

// Test/bench hook: forces Active() to a given level for the lifetime of the
// object (nesting restores the previous override). The override is published
// atomically so concurrent kernel *callers* are safe, but installation is
// not synchronized against them — install before spawning parallel work.
class ScopedForceKernels {
 public:
  explicit ScopedForceKernels(SimdLevel level);
  ~ScopedForceKernels();

  ScopedForceKernels(const ScopedForceKernels&) = delete;
  ScopedForceKernels& operator=(const ScopedForceKernels&) = delete;

 private:
  SimdLevel previous_;
  bool had_previous_;
};

// --- Gustavson SpGEMM row kernels (dispatch-invariant scalar) -------------
//
// Shared by the sequential and parallel SpGEMM, the symbolic count pass and
// ProductNnzExact. `acc` (dense accumulator) and `seen` (occupancy map) obey
// the clean-buffer idiom: all-zero on entry, and the gather/reset step
// re-zeroes exactly the touched entries before returning — which is what
// makes them safe to reuse across rows, blocks and ScratchArena leases.

// Scatters one A-row term: acc[j] += av * b_val[t] over B's row pattern,
// recording first touches in seen/occupied.
inline void SpGemmScatterRow(const int64_t* b_idx, const double* b_val,
                             int64_t nb, double av, double* acc, char* seen,
                             std::vector<int64_t>& occupied) {
  for (int64_t t = 0; t < nb; ++t) {
    const int64_t j = b_idx[t];
    if (!seen[static_cast<size_t>(j)]) {
      seen[static_cast<size_t>(j)] = 1;
      occupied.push_back(j);
    }
    acc[static_cast<size_t>(j)] += av * b_val[t];
  }
}

// Pattern-only variant for the symbolic pass.
inline void SpGemmSymbolicRow(const int64_t* b_idx, int64_t nb, char* seen,
                              std::vector<int64_t>& occupied) {
  for (int64_t t = 0; t < nb; ++t) {
    const int64_t j = b_idx[t];
    if (!seen[static_cast<size_t>(j)]) {
      seen[static_cast<size_t>(j)] = 1;
      occupied.push_back(j);
    }
  }
}

// Sorts the occupied columns, gathers non-cancelled entries (value != 0.0)
// into out_idx/out_val, and resets the touched acc/seen entries. Returns the
// number of entries written (<= occupied.size()). Clears `occupied`.
inline int64_t SpGemmGatherRow(std::vector<int64_t>& occupied, double* acc,
                               char* seen, int64_t* out_idx, double* out_val) {
  std::sort(occupied.begin(), occupied.end());
  int64_t written = 0;
  for (int64_t j : occupied) {
    const double v = acc[static_cast<size_t>(j)];
    if (v != 0.0) {
      out_idx[written] = j;
      out_val[written] = v;
      ++written;
    }
    acc[static_cast<size_t>(j)] = 0.0;
    seen[static_cast<size_t>(j)] = 0;
  }
  occupied.clear();
  return written;
}

// Resets the seen map after a symbolic row and clears `occupied`, returning
// the pattern count.
inline int64_t SpGemmResetSymbolicRow(std::vector<int64_t>& occupied,
                                      char* seen) {
  const int64_t count = static_cast<int64_t>(occupied.size());
  for (int64_t j : occupied) seen[static_cast<size_t>(j)] = 0;
  occupied.clear();
  return count;
}

}  // namespace kernels
}  // namespace mnc

#endif  // MNC_KERNELS_KERNELS_H_
