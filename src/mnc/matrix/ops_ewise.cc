#include "mnc/matrix/ops_ewise.h"

#include <algorithm>

namespace mnc {

namespace {

void CheckSameShape(int64_t ar, int64_t ac, int64_t br, int64_t bc) {
  MNC_CHECK_EQ(ar, br);
  MNC_CHECK_EQ(ac, bc);
}

}  // namespace

CsrMatrix AddSparseSparse(const CsrMatrix& a, const CsrMatrix& b) {
  CheckSameShape(a.rows(), a.cols(), b.rows(), b.cols());
  const int64_t m = a.rows();
  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<size_t>(a.NumNonZeros() + b.NumNonZeros()));
  values.reserve(col_idx.capacity());

  for (int64_t i = 0; i < m; ++i) {
    const auto ai = a.RowIndices(i);
    const auto av = a.RowValues(i);
    const auto bi = b.RowIndices(i);
    const auto bv = b.RowValues(i);
    size_t ka = 0;
    size_t kb = 0;
    while (ka < ai.size() || kb < bi.size()) {
      int64_t j;
      double v;
      if (kb >= bi.size() || (ka < ai.size() && ai[ka] < bi[kb])) {
        j = ai[ka];
        v = av[ka];
        ++ka;
      } else if (ka >= ai.size() || bi[kb] < ai[ka]) {
        j = bi[kb];
        v = bv[kb];
        ++kb;
      } else {
        j = ai[ka];
        v = av[ka] + bv[kb];
        ++ka;
        ++kb;
      }
      if (v != 0.0) {
        col_idx.push_back(j);
        values.push_back(v);
      }
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m, a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix MultiplyEWiseSparseSparse(const CsrMatrix& a, const CsrMatrix& b) {
  CheckSameShape(a.rows(), a.cols(), b.rows(), b.cols());
  const int64_t m = a.rows();
  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;

  for (int64_t i = 0; i < m; ++i) {
    const auto ai = a.RowIndices(i);
    const auto av = a.RowValues(i);
    const auto bi = b.RowIndices(i);
    const auto bv = b.RowValues(i);
    size_t ka = 0;
    size_t kb = 0;
    while (ka < ai.size() && kb < bi.size()) {
      if (ai[ka] < bi[kb]) {
        ++ka;
      } else if (bi[kb] < ai[ka]) {
        ++kb;
      } else {
        const double v = av[ka] * bv[kb];
        if (v != 0.0) {
          col_idx.push_back(ai[ka]);
          values.push_back(v);
        }
        ++ka;
        ++kb;
      }
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m, a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

DenseMatrix AddDenseDense(const DenseMatrix& a, const DenseMatrix& b) {
  CheckSameShape(a.rows(), a.cols(), b.rows(), b.cols());
  DenseMatrix c(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  for (int64_t k = 0; k < a.size(); ++k) pc[k] = pa[k] + pb[k];
  return c;
}

DenseMatrix MultiplyEWiseDenseDense(const DenseMatrix& a,
                                    const DenseMatrix& b) {
  CheckSameShape(a.rows(), a.cols(), b.rows(), b.cols());
  DenseMatrix c(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  for (int64_t k = 0; k < a.size(); ++k) pc[k] = pa[k] * pb[k];
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  CheckSameShape(a.rows(), a.cols(), b.rows(), b.cols());
  if (a.is_dense() && b.is_dense()) {
    return Matrix::AutoFromDense(AddDenseDense(a.dense(), b.dense()));
  }
  // Mixed or sparse-sparse: a dense input dominates the output structure, so
  // fall back to the sparse kernel only for sparse-sparse.
  if (!a.is_dense() && !b.is_dense()) {
    return Matrix::AutoFromCsr(AddSparseSparse(a.csr(), b.csr()));
  }
  return Matrix::AutoFromDense(AddDenseDense(a.AsDense(), b.AsDense()));
}

Matrix MultiplyEWise(const Matrix& a, const Matrix& b) {
  CheckSameShape(a.rows(), a.cols(), b.rows(), b.cols());
  if (a.is_dense() && b.is_dense()) {
    return Matrix::AutoFromDense(
        MultiplyEWiseDenseDense(a.dense(), b.dense()));
  }
  // Any sparse input makes the intersection at most as dense as it, so use
  // the sparse kernel.
  return Matrix::AutoFromCsr(MultiplyEWiseSparseSparse(a.AsCsr(), b.AsCsr()));
}

CsrMatrix NotEqualZeroSparse(const CsrMatrix& a) {
  std::vector<double> ones(static_cast<size_t>(a.NumNonZeros()), 1.0);
  return CsrMatrix(a.rows(), a.cols(), a.row_ptr(), a.col_idx(),
                   std::move(ones));
}

Matrix NotEqualZero(const Matrix& a) {
  if (a.is_dense()) {
    DenseMatrix c(a.rows(), a.cols());
    const double* pa = a.dense().data();
    double* pc = c.data();
    for (int64_t k = 0; k < c.size(); ++k) pc[k] = pa[k] != 0.0 ? 1.0 : 0.0;
    return Matrix::AutoFromDense(std::move(c));
  }
  return Matrix::Sparse(NotEqualZeroSparse(a.csr()));
}

Matrix EqualZero(const Matrix& a) {
  DenseMatrix c(a.rows(), a.cols());
  double* pc = c.data();
  for (int64_t k = 0; k < c.size(); ++k) pc[k] = 1.0;
  if (a.is_dense()) {
    const double* pa = a.dense().data();
    for (int64_t k = 0; k < c.size(); ++k) pc[k] = pa[k] == 0.0 ? 1.0 : 0.0;
  } else {
    const CsrMatrix& s = a.csr();
    for (int64_t i = 0; i < s.rows(); ++i) {
      for (int64_t j : s.RowIndices(i)) c.Set(i, j, 0.0);
    }
  }
  return Matrix::AutoFromDense(std::move(c));
}

namespace {

// Shared sorted-merge kernel for element-wise min/max. `take_min` selects
// the combiner; absent entries are treated as zero values.
CsrMatrix MinMaxEWise(const CsrMatrix& a, const CsrMatrix& b, bool take_min) {
  CheckSameShape(a.rows(), a.cols(), b.rows(), b.cols());
  const int64_t m = a.rows();
  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;

  auto combine = [take_min](double x, double y) {
    return take_min ? std::min(x, y) : std::max(x, y);
  };
  for (int64_t i = 0; i < m; ++i) {
    const auto ai = a.RowIndices(i);
    const auto av = a.RowValues(i);
    const auto bi = b.RowIndices(i);
    const auto bv = b.RowValues(i);
    size_t ka = 0;
    size_t kb = 0;
    while (ka < ai.size() || kb < bi.size()) {
      int64_t j;
      double v;
      if (kb >= bi.size() || (ka < ai.size() && ai[ka] < bi[kb])) {
        j = ai[ka];
        v = combine(av[ka], 0.0);
        ++ka;
      } else if (ka >= ai.size() || bi[kb] < ai[ka]) {
        j = bi[kb];
        v = combine(0.0, bv[kb]);
        ++kb;
      } else {
        j = ai[ka];
        v = combine(av[ka], bv[kb]);
        ++ka;
        ++kb;
      }
      if (v != 0.0) {
        col_idx.push_back(j);
        values.push_back(v);
      }
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m, a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace

CsrMatrix MinEWiseSparseSparse(const CsrMatrix& a, const CsrMatrix& b) {
  return MinMaxEWise(a, b, /*take_min=*/true);
}

CsrMatrix MaxEWiseSparseSparse(const CsrMatrix& a, const CsrMatrix& b) {
  return MinMaxEWise(a, b, /*take_min=*/false);
}

Matrix MinEWise(const Matrix& a, const Matrix& b) {
  return Matrix::AutoFromCsr(MinEWiseSparseSparse(a.AsCsr(), b.AsCsr()));
}

Matrix MaxEWise(const Matrix& a, const Matrix& b) {
  return Matrix::AutoFromCsr(MaxEWiseSparseSparse(a.AsCsr(), b.AsCsr()));
}

CsrMatrix ScaleSparse(const CsrMatrix& a, double alpha) {
  if (alpha == 0.0) return CsrMatrix(a.rows(), a.cols());
  std::vector<double> values = a.values();
  for (double& v : values) v *= alpha;
  return CsrMatrix(a.rows(), a.cols(), a.row_ptr(), a.col_idx(),
                   std::move(values));
}

Matrix Scale(const Matrix& a, double alpha) {
  if (a.is_dense()) {
    DenseMatrix c(a.rows(), a.cols());
    const double* pa = a.dense().data();
    double* pc = c.data();
    for (int64_t k = 0; k < c.size(); ++k) pc[k] = pa[k] * alpha;
    return Matrix::AutoFromDense(std::move(c));
  }
  return Matrix::Sparse(ScaleSparse(a.csr(), alpha));
}

CsrMatrix RowSumsSparse(const CsrMatrix& a) {
  const int64_t m = a.rows();
  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  for (int64_t i = 0; i < m; ++i) {
    double sum = 0.0;
    for (double v : a.RowValues(i)) sum += v;
    if (sum != 0.0) {
      col_idx.push_back(0);
      values.push_back(sum);
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m, 1, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix ColSumsSparse(const CsrMatrix& a) {
  std::vector<double> sums(static_cast<size_t>(a.cols()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const auto idx = a.RowIndices(i);
    const auto val = a.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      sums[static_cast<size_t>(idx[k])] += val[k];
    }
  }
  std::vector<int64_t> row_ptr = {0, 0};
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  for (int64_t j = 0; j < a.cols(); ++j) {
    if (sums[static_cast<size_t>(j)] != 0.0) {
      col_idx.push_back(j);
      values.push_back(sums[static_cast<size_t>(j)]);
    }
  }
  row_ptr[1] = static_cast<int64_t>(col_idx.size());
  return CsrMatrix(1, a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

Matrix RowSums(const Matrix& a) {
  return Matrix::AutoFromCsr(RowSumsSparse(a.AsCsr()));
}

Matrix ColSums(const Matrix& a) {
  return Matrix::AutoFromCsr(ColSumsSparse(a.AsCsr()));
}

}  // namespace mnc
