#include "mnc/matrix/csc_matrix.h"

#include <algorithm>

#include "mnc/matrix/csr_matrix.h"

namespace mnc {

CscMatrix::CscMatrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  MNC_CHECK_GE(rows, 0);
  MNC_CHECK_GE(cols, 0);
  col_ptr_.assign(static_cast<size_t>(cols) + 1, 0);
}

CscMatrix::CscMatrix(int64_t rows, int64_t cols, std::vector<int64_t> col_ptr,
                     std::vector<int64_t> row_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)),
      values_(std::move(values)) {
  CheckInvariants();
}

double CscMatrix::Sparsity() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(NumNonZeros()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

double CscMatrix::At(int64_t i, int64_t j) const {
  MNC_DCHECK(i >= 0 && i < rows_);
  MNC_DCHECK(j >= 0 && j < cols_);
  const auto idx = ColIndices(j);
  const auto it = std::lower_bound(idx.begin(), idx.end(), i);
  if (it == idx.end() || *it != i) return 0.0;
  return ColValues(j)[static_cast<size_t>(it - idx.begin())];
}

std::vector<int64_t> CscMatrix::NnzPerRow() const {
  std::vector<int64_t> counts(static_cast<size_t>(rows_), 0);
  for (int64_t i : row_idx_) ++counts[static_cast<size_t>(i)];
  return counts;
}

std::vector<int64_t> CscMatrix::NnzPerCol() const {
  std::vector<int64_t> counts(static_cast<size_t>(cols_));
  for (int64_t j = 0; j < cols_; ++j) {
    counts[static_cast<size_t>(j)] = ColNnz(j);
  }
  return counts;
}

CscMatrix CscMatrix::FromCsr(const CsrMatrix& csr) {
  const int64_t m = csr.rows();
  const int64_t n = csr.cols();
  const int64_t nnz = csr.NumNonZeros();

  std::vector<int64_t> col_ptr(static_cast<size_t>(n) + 1, 0);
  for (int64_t j : csr.col_idx()) ++col_ptr[static_cast<size_t>(j) + 1];
  for (size_t j = 0; j < static_cast<size_t>(n); ++j) {
    col_ptr[j + 1] += col_ptr[j];
  }
  std::vector<int64_t> row_idx(static_cast<size_t>(nnz));
  std::vector<double> values(static_cast<size_t>(nnz));
  std::vector<int64_t> next = col_ptr;
  for (int64_t i = 0; i < m; ++i) {
    const auto idx = csr.RowIndices(i);
    const auto val = csr.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      const int64_t pos = next[static_cast<size_t>(idx[k])]++;
      row_idx[static_cast<size_t>(pos)] = i;
      values[static_cast<size_t>(pos)] = val[k];
    }
  }
  return CscMatrix(m, n, std::move(col_ptr), std::move(row_idx),
                   std::move(values));
}

CsrMatrix CscMatrix::ToCsr() const {
  const int64_t nnz = NumNonZeros();
  std::vector<int64_t> row_ptr(static_cast<size_t>(rows_) + 1, 0);
  for (int64_t i : row_idx_) ++row_ptr[static_cast<size_t>(i) + 1];
  for (size_t i = 0; i < static_cast<size_t>(rows_); ++i) {
    row_ptr[i + 1] += row_ptr[i];
  }
  std::vector<int64_t> col_idx(static_cast<size_t>(nnz));
  std::vector<double> values(static_cast<size_t>(nnz));
  std::vector<int64_t> next = row_ptr;
  for (int64_t j = 0; j < cols_; ++j) {
    const auto idx = ColIndices(j);
    const auto val = ColValues(j);
    for (size_t k = 0; k < idx.size(); ++k) {
      const int64_t pos = next[static_cast<size_t>(idx[k])]++;
      col_idx[static_cast<size_t>(pos)] = j;
      values[static_cast<size_t>(pos)] = val[k];
    }
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

bool CscMatrix::Equals(const CscMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         col_ptr_ == other.col_ptr_ && row_idx_ == other.row_idx_ &&
         values_ == other.values_;
}

void CscMatrix::CheckInvariants() const {
  MNC_CHECK_EQ(static_cast<int64_t>(col_ptr_.size()), cols_ + 1);
  MNC_CHECK_EQ(col_ptr_.front(), 0);
  MNC_CHECK_EQ(col_ptr_.back(), static_cast<int64_t>(row_idx_.size()));
  MNC_CHECK_EQ(row_idx_.size(), values_.size());
  for (size_t j = 0; j < static_cast<size_t>(cols_); ++j) {
    MNC_CHECK_LE(col_ptr_[j], col_ptr_[j + 1]);
    for (int64_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      const int64_t i = row_idx_[static_cast<size_t>(k)];
      MNC_CHECK(i >= 0 && i < rows_);
      if (k > col_ptr_[j]) {
        MNC_CHECK_MSG(row_idx_[static_cast<size_t>(k) - 1] < i,
                      "row indices must be strictly increasing per column");
      }
      MNC_CHECK_MSG(values_[static_cast<size_t>(k)] != 0.0,
                    "stored values must be non-zero");
    }
  }
}

}  // namespace mnc
