#include "mnc/matrix/generate.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "mnc/matrix/coo_matrix.h"
#include "mnc/util/check.h"

namespace mnc {

namespace {

double RandomValue(Rng& rng) { return rng.Uniform(0.5, 1.5); }

}  // namespace

CsrMatrix GenerateUniformSparse(int64_t rows, int64_t cols, double sparsity,
                                Rng& rng) {
  MNC_CHECK_GE(sparsity, 0.0);
  MNC_CHECK_LE(sparsity, 1.0);
  const double cells = static_cast<double>(rows) * static_cast<double>(cols);
  const int64_t target = static_cast<int64_t>(std::llround(sparsity * cells));
  CooMatrix coo(rows, cols);
  coo.Reserve(target);

  if (target > static_cast<int64_t>(cells) / 2) {
    // Dense-ish: per-cell Bernoulli with exact count via selection sampling
    // over the linear index space.
    int64_t remaining = target;
    const int64_t total = rows * cols;
    for (int64_t lin = 0; lin < total && remaining > 0; ++lin) {
      if (rng.UniformInt(total - lin) < remaining) {
        coo.Add(lin / cols, lin % cols, RandomValue(rng));
        --remaining;
      }
    }
  } else {
    // Sparse: rejection-sample distinct linear cells.
    std::unordered_set<int64_t> used;
    used.reserve(static_cast<size_t>(target) * 2);
    while (static_cast<int64_t>(used.size()) < target) {
      const int64_t lin = rng.UniformInt(rows * cols);
      if (used.insert(lin).second) {
        coo.Add(lin / cols, lin % cols, RandomValue(rng));
      }
    }
  }
  return coo.ToCsr();
}

DenseMatrix GenerateDense(int64_t rows, int64_t cols, Rng& rng) {
  DenseMatrix m(rows, cols);
  double* p = m.data();
  for (int64_t k = 0; k < m.size(); ++k) p[k] = RandomValue(rng);
  return m;
}

DenseMatrix GenerateAlmostDense(int64_t rows, int64_t cols,
                                double zero_fraction, Rng& rng) {
  DenseMatrix m = GenerateDense(rows, cols, rng);
  double* p = m.data();
  for (int64_t k = 0; k < m.size(); ++k) {
    if (rng.Bernoulli(zero_fraction)) p[k] = 0.0;
  }
  return m;
}

CsrMatrix GeneratePermutation(int64_t n, Rng& rng) {
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  rng.Shuffle(perm);
  std::vector<int64_t> row_ptr(static_cast<size_t>(n) + 1);
  for (int64_t i = 0; i <= n; ++i) row_ptr[static_cast<size_t>(i)] = i;
  std::vector<double> ones(static_cast<size_t>(n), 1.0);
  return CsrMatrix(n, n, std::move(row_ptr), std::move(perm),
                   std::move(ones));
}

CsrMatrix GenerateSelection(const std::vector<int64_t>& selected, int64_t n) {
  const int64_t k = static_cast<int64_t>(selected.size());
  std::vector<int64_t> row_ptr(static_cast<size_t>(k) + 1);
  for (int64_t i = 0; i <= k; ++i) row_ptr[static_cast<size_t>(i)] = i;
  std::vector<int64_t> col_idx = selected;
  for (int64_t j : col_idx) MNC_CHECK(j >= 0 && j < n);
  std::vector<double> ones(static_cast<size_t>(k), 1.0);
  return CsrMatrix(k, n, std::move(row_ptr), std::move(col_idx),
                   std::move(ones));
}

CsrMatrix GenerateDiagonal(int64_t n, Rng& rng) {
  std::vector<int64_t> row_ptr(static_cast<size_t>(n) + 1);
  std::vector<int64_t> col_idx(static_cast<size_t>(n));
  std::vector<double> values(static_cast<size_t>(n));
  for (int64_t i = 0; i <= n; ++i) row_ptr[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < n; ++i) {
    col_idx[static_cast<size_t>(i)] = i;
    values[static_cast<size_t>(i)] = RandomValue(rng);
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix GenerateOneNnzPerRow(int64_t rows, int64_t cols,
                               const ZipfDistribution& column_dist,
                               Rng& rng) {
  MNC_CHECK_LE(column_dist.n(), cols);
  std::vector<int64_t> row_ptr(static_cast<size_t>(rows) + 1);
  std::vector<int64_t> col_idx(static_cast<size_t>(rows));
  std::vector<double> ones(static_cast<size_t>(rows), 1.0);
  for (int64_t i = 0; i <= rows; ++i) row_ptr[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < rows; ++i) {
    col_idx[static_cast<size_t>(i)] = column_dist(rng);
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(ones));
}

CsrMatrix GenerateWithColumnCounts(int64_t rows,
                                   const std::vector<int64_t>& col_nnz,
                                   Rng& rng) {
  const int64_t cols = static_cast<int64_t>(col_nnz.size());
  CooMatrix coo(rows, cols);
  for (int64_t j = 0; j < cols; ++j) {
    const int64_t count = col_nnz[static_cast<size_t>(j)];
    MNC_CHECK_LE(count, rows);
    for (int64_t i : rng.SampleWithoutReplacement(rows, count)) {
      coo.Add(i, j, RandomValue(rng));
    }
  }
  return coo.ToCsr();
}

CsrMatrix GenerateWithRowCounts(int64_t cols,
                                const std::vector<int64_t>& row_nnz,
                                Rng& rng) {
  const int64_t rows = static_cast<int64_t>(row_nnz.size());
  CooMatrix coo(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t count = row_nnz[static_cast<size_t>(i)];
    MNC_CHECK_LE(count, cols);
    for (int64_t j : rng.SampleWithoutReplacement(cols, count)) {
      coo.Add(i, j, RandomValue(rng));
    }
  }
  return coo.ToCsr();
}

CsrMatrix GenerateGraphAdjacency(int64_t n, double avg_degree, double skew,
                                 Rng& rng) {
  MNC_CHECK_GT(n, 0);
  // Out-degree of node i ~ scaled Zipf rank; targets drawn Zipf over a
  // random popularity ordering so hubs are not all low node ids.
  ZipfDistribution target_dist(n, skew);
  std::vector<int64_t> popularity(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) popularity[static_cast<size_t>(i)] = i;
  rng.Shuffle(popularity);

  CooMatrix coo(n, n);
  const int64_t total_edges =
      static_cast<int64_t>(std::llround(avg_degree * static_cast<double>(n)));
  coo.Reserve(total_edges);
  // Degree skew: node i gets degree proportional to 1/(rank+1)^(skew/2),
  // normalized to hit total_edges overall.
  std::vector<double> weight(static_cast<size_t>(n));
  double wsum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    weight[static_cast<size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), skew / 2.0);
    wsum += weight[static_cast<size_t>(i)];
  }
  for (int64_t i = 0; i < n; ++i) {
    const int64_t degree = static_cast<int64_t>(std::llround(
        weight[static_cast<size_t>(i)] / wsum *
        static_cast<double>(total_edges)));
    for (int64_t e = 0; e < degree; ++e) {
      const int64_t j = popularity[static_cast<size_t>(target_dist(rng))];
      coo.Add(i, j, 1.0);  // duplicate edges merge in ToCsr()
    }
  }
  // Duplicate edges sum to >1 in COO conversion; renormalize to a 0/1
  // adjacency matrix.
  CsrMatrix merged = coo.ToCsr();
  std::vector<double> ones(static_cast<size_t>(merged.NumNonZeros()), 1.0);
  return CsrMatrix(merged.rows(), merged.cols(), merged.row_ptr(),
                   merged.col_idx(), std::move(ones));
}

}  // namespace mnc
