#include "mnc/matrix/csr_matrix.h"

#include <algorithm>

#include "mnc/matrix/dense_matrix.h"

namespace mnc {

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  MNC_CHECK_GE(rows, 0);
  MNC_CHECK_GE(cols, 0);
  row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
}

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
                     std::vector<int64_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  CheckInvariants();
}

double CsrMatrix::Sparsity() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(NumNonZeros()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

double CsrMatrix::At(int64_t i, int64_t j) const {
  MNC_DCHECK(i >= 0 && i < rows_);
  MNC_DCHECK(j >= 0 && j < cols_);
  const auto idx = RowIndices(i);
  const auto it = std::lower_bound(idx.begin(), idx.end(), j);
  if (it == idx.end() || *it != j) return 0.0;
  return RowValues(i)[static_cast<size_t>(it - idx.begin())];
}

std::vector<int64_t> CsrMatrix::NnzPerRow() const {
  std::vector<int64_t> counts(static_cast<size_t>(rows_));
  for (int64_t i = 0; i < rows_; ++i) counts[static_cast<size_t>(i)] = RowNnz(i);
  return counts;
}

std::vector<int64_t> CsrMatrix::NnzPerCol() const {
  std::vector<int64_t> counts(static_cast<size_t>(cols_), 0);
  for (int64_t j : col_idx_) ++counts[static_cast<size_t>(j)];
  return counts;
}

bool CsrMatrix::IsFullyDiagonal() const {
  if (rows_ != cols_) return false;
  if (NumNonZeros() != rows_) return false;
  for (int64_t i = 0; i < rows_; ++i) {
    const auto idx = RowIndices(i);
    if (idx.size() != 1 || idx[0] != i) return false;
  }
  return true;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (int64_t i = 0; i < rows_; ++i) {
    const auto idx = RowIndices(i);
    const auto val = RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      out.Set(i, idx[k], val[k]);
    }
  }
  return out;
}

CsrMatrix CsrMatrix::FromDense(const DenseMatrix& dense) {
  std::vector<int64_t> row_ptr(static_cast<size_t>(dense.rows()) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  for (int64_t i = 0; i < dense.rows(); ++i) {
    const double* r = dense.row(i);
    for (int64_t j = 0; j < dense.cols(); ++j) {
      if (r[j] != 0.0) {
        col_idx.push_back(j);
        values.push_back(r[j]);
      }
    }
    row_ptr[static_cast<size_t>(i) + 1] =
        static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(dense.rows(), dense.cols(), std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

bool CsrMatrix::Equals(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
         values_ == other.values_;
}

void CsrMatrix::CheckInvariants() const {
  MNC_CHECK_EQ(static_cast<int64_t>(row_ptr_.size()), rows_ + 1);
  MNC_CHECK_EQ(row_ptr_.front(), 0);
  MNC_CHECK_EQ(row_ptr_.back(), static_cast<int64_t>(col_idx_.size()));
  MNC_CHECK_EQ(col_idx_.size(), values_.size());
  for (size_t r = 0; r < static_cast<size_t>(rows_); ++r) {
    MNC_CHECK_LE(row_ptr_[r], row_ptr_[r + 1]);
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const int64_t j = col_idx_[static_cast<size_t>(k)];
      MNC_CHECK(j >= 0 && j < cols_);
      if (k > row_ptr_[r]) {
        MNC_CHECK_MSG(col_idx_[static_cast<size_t>(k) - 1] < j,
                      "column indices must be strictly increasing per row");
      }
      MNC_CHECK_MSG(values_[static_cast<size_t>(k)] != 0.0,
                    "stored values must be non-zero");
    }
  }
}

}  // namespace mnc
