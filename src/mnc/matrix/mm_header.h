// Shared Matrix-Market banner/header parsing.
//
// Both readers of .mtx files — the materializing ReadMatrixMarket in
// matrix/io.cc and the chunked streaming TripletSource in ingest/ — must
// agree byte-for-byte on what a valid header is: banner tag, object/format,
// field and symmetry qualifiers, comment skipping, and the size line with
// its sanity bounds. This helper is that single definition, so the two
// readers cannot drift.
//
// All validation happens BEFORE any allocation sized by the header:
//   - dimensions are bounded by kMaxMatrixMarketDimension (2^40),
//   - nnz <= rows * cols is checked in division form (the product itself
//     can overflow int64),
//   - the symmetric logical entry count 2 * nnz is checked against int64
//     overflow explicitly,
//   - for seekable streams, the declared nnz is pre-validated against the
//     bytes actually remaining (every coordinate entry needs at least
//     kMinMatrixMarketBytesPerEntry bytes of text).

#ifndef MNC_MATRIX_MM_HEADER_H_
#define MNC_MATRIX_MM_HEADER_H_

#include <cstdint>
#include <iosfwd>

#include "mnc/util/status.h"

namespace mnc {

// Sanity cap against corrupted headers declaring absurd dimensions.
inline constexpr int64_t kMaxMatrixMarketDimension = int64_t{1} << 40;

// The smallest syntactically possible coordinate entry is "i j\n" — at
// least four bytes.
inline constexpr int64_t kMinMatrixMarketBytesPerEntry = 4;

struct MatrixMarketHeader {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t nnz = 0;        // declared entry count (pre-mirroring)
  bool pattern = false;   // field "pattern": entries carry no value
  bool symmetric = false; // symmetry "symmetric": off-diagonals mirror
  int64_t line_no = 0;    // line number of the size line (for diagnostics)

  // Entries after symmetric mirroring; the 2 * nnz overflow is checked at
  // parse time, so this cannot wrap.
  int64_t LogicalNnz() const { return symmetric ? 2 * nnz : nnz; }
};

// Bytes remaining from the current position, or -1 if the stream is not
// seekable. Restores the read position.
int64_t RemainingStreamBytes(std::istream& is);

// Parses the banner, comment lines, and size line, leaving `is` positioned
// at the first coordinate entry. Performs every check described in the file
// comment; errors name the offending line.
StatusOr<MatrixMarketHeader> ReadMatrixMarketHeader(std::istream& is);

}  // namespace mnc

#endif  // MNC_MATRIX_MM_HEADER_H_
