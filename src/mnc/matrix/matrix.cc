#include "mnc/matrix/matrix.h"

#include "mnc/util/crc32.h"

namespace mnc {

Matrix Matrix::Dense(DenseMatrix dense) {
  Matrix m;
  m.dense_ = std::make_shared<const DenseMatrix>(std::move(dense));
  return m;
}

Matrix Matrix::Sparse(CsrMatrix csr) {
  Matrix m;
  m.csr_ = std::make_shared<const CsrMatrix>(std::move(csr));
  return m;
}

Matrix Matrix::AutoFromCsr(CsrMatrix csr) {
  if (csr.Sparsity() >= kDenseDispatchThreshold) {
    return Dense(csr.ToDense());
  }
  return Sparse(std::move(csr));
}

Matrix Matrix::AutoFromDense(DenseMatrix dense) {
  if (dense.Sparsity() < kDenseDispatchThreshold) {
    return Sparse(dense.ToCsr());
  }
  return Dense(std::move(dense));
}

Matrix Matrix::AutoFromDenseEstimated(DenseMatrix dense,
                                      double estimated_sparsity) {
  if (estimated_sparsity >= kDenseDispatchThreshold) {
    return Dense(std::move(dense));
  }
  return AutoFromDense(std::move(dense));
}

int64_t Matrix::rows() const { return is_dense() ? dense_->rows() : csr_->rows(); }
int64_t Matrix::cols() const { return is_dense() ? dense_->cols() : csr_->cols(); }

int64_t Matrix::NumNonZeros() const {
  return is_dense() ? dense_->NumNonZeros() : csr_->NumNonZeros();
}

double Matrix::Sparsity() const {
  return is_dense() ? dense_->Sparsity() : csr_->Sparsity();
}

const DenseMatrix& Matrix::dense() const {
  MNC_CHECK_MSG(dense_ != nullptr, "matrix is stored sparse");
  return *dense_;
}

const CsrMatrix& Matrix::csr() const {
  MNC_CHECK_MSG(csr_ != nullptr, "matrix is stored dense");
  return *csr_;
}

CsrMatrix Matrix::AsCsr() const {
  return is_dense() ? dense_->ToCsr() : *csr_;
}

DenseMatrix Matrix::AsDense() const {
  return is_dense() ? *dense_ : csr_->ToDense();
}

bool Matrix::EqualsLogically(const Matrix& other) const {
  if (rows() != other.rows() || cols() != other.cols()) return false;
  return AsCsr().Equals(other.AsCsr());
}

uint64_t MatrixFingerprint(const Matrix& m) {
  const int64_t dims[2] = {m.rows(), m.cols()};
  uint32_t structure = Crc32(dims, sizeof(dims));
  uint32_t values = 0;
  // Feed every stored non-zero as ((i, j) -> structure, value -> values) in
  // row-major order, which is identical for the dense and CSR layouts of the
  // same logical matrix (CSR columns are strictly increasing per row, and
  // CSR never stores zeros).
  if (m.is_dense()) {
    const DenseMatrix& d = m.dense();
    for (int64_t i = 0; i < d.rows(); ++i) {
      for (int64_t j = 0; j < d.cols(); ++j) {
        const double v = d.At(i, j);
        if (v == 0.0) continue;
        const int64_t coord[2] = {i, j};
        structure = Crc32Update(structure, coord, sizeof(coord));
        values = Crc32Update(values, &v, sizeof(v));
      }
    }
  } else {
    const CsrMatrix& c = m.csr();
    for (int64_t i = 0; i < c.rows(); ++i) {
      const auto idx = c.RowIndices(i);
      const auto val = c.RowValues(i);
      for (size_t k = 0; k < idx.size(); ++k) {
        const int64_t coord[2] = {i, idx[k]};
        structure = Crc32Update(structure, coord, sizeof(coord));
        values = Crc32Update(values, &val[k], sizeof(val[k]));
      }
    }
  }
  return (static_cast<uint64_t>(structure) << 32) | values;
}

}  // namespace mnc
