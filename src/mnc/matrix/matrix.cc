#include "mnc/matrix/matrix.h"

namespace mnc {

Matrix Matrix::Dense(DenseMatrix dense) {
  Matrix m;
  m.dense_ = std::make_shared<const DenseMatrix>(std::move(dense));
  return m;
}

Matrix Matrix::Sparse(CsrMatrix csr) {
  Matrix m;
  m.csr_ = std::make_shared<const CsrMatrix>(std::move(csr));
  return m;
}

Matrix Matrix::AutoFromCsr(CsrMatrix csr) {
  if (csr.Sparsity() >= kDenseDispatchThreshold) {
    return Dense(csr.ToDense());
  }
  return Sparse(std::move(csr));
}

Matrix Matrix::AutoFromDense(DenseMatrix dense) {
  if (dense.Sparsity() < kDenseDispatchThreshold) {
    return Sparse(dense.ToCsr());
  }
  return Dense(std::move(dense));
}

int64_t Matrix::rows() const { return is_dense() ? dense_->rows() : csr_->rows(); }
int64_t Matrix::cols() const { return is_dense() ? dense_->cols() : csr_->cols(); }

int64_t Matrix::NumNonZeros() const {
  return is_dense() ? dense_->NumNonZeros() : csr_->NumNonZeros();
}

double Matrix::Sparsity() const {
  return is_dense() ? dense_->Sparsity() : csr_->Sparsity();
}

const DenseMatrix& Matrix::dense() const {
  MNC_CHECK_MSG(dense_ != nullptr, "matrix is stored sparse");
  return *dense_;
}

const CsrMatrix& Matrix::csr() const {
  MNC_CHECK_MSG(csr_ != nullptr, "matrix is stored dense");
  return *csr_;
}

CsrMatrix Matrix::AsCsr() const {
  return is_dense() ? dense_->ToCsr() : *csr_;
}

DenseMatrix Matrix::AsDense() const {
  return is_dense() ? *dense_ : csr_->ToDense();
}

bool Matrix::EqualsLogically(const Matrix& other) const {
  if (rows() != other.rows() || cols() != other.cols()) return false;
  return AsCsr().Equals(other.AsCsr());
}

}  // namespace mnc
