// Matrix-product kernels: sparse (Gustavson SpGEMM), dense (blocked GEMM),
// mixed, and the format-dispatching Multiply() entry point that provides the
// FP64 ground truth for the benchmark (§6.1: "we execute FP64 matrix
// operations with internal dispatch of dense and sparse operations").

#ifndef MNC_MATRIX_OPS_PRODUCT_H_
#define MNC_MATRIX_OPS_PRODUCT_H_

#include "mnc/matrix/csr_matrix.h"
#include "mnc/matrix/dense_matrix.h"
#include "mnc/matrix/matrix.h"
#include "mnc/util/parallel.h"
#include "mnc/util/thread_pool.h"

namespace mnc {

// C = A B with both inputs sparse (row-wise Gustavson algorithm).
// expected_nnz (optional, e.g. from an MNC estimate) preallocates the
// output arrays — the "memory preallocation" use of sparsity estimates the
// paper's introduction motivates. The result is identical either way.
CsrMatrix MultiplySparseSparse(const CsrMatrix& a, const CsrMatrix& b,
                               int64_t expected_nnz = -1);

// Parallel two-pass Gustavson SpGEMM behind the ParallelConfig knob: a
// symbolic pass counts each output row's non-zeros, an exclusive scan over
// the counts builds row_ptr, and a fill pass writes every row block into its
// disjoint output slice. Each row accumulates in the same scatter/sort
// order as the sequential kernel, so the result equals MultiplySparseSparse
// bit-for-bit at any thread count.
CsrMatrix MultiplySparseSparse(const CsrMatrix& a, const CsrMatrix& b,
                               const ParallelConfig& config, ThreadPool* pool);

// C = A B with both inputs dense. If pool is non-null, rows of C are
// computed in parallel.
DenseMatrix MultiplyDenseDense(const DenseMatrix& a, const DenseMatrix& b,
                               ThreadPool* pool = nullptr);

// C = A B with sparse A, dense B (dense output).
DenseMatrix MultiplySparseDense(const CsrMatrix& a, const DenseMatrix& b);

// C = A B with dense A, sparse B (dense output).
DenseMatrix MultiplyDenseSparse(const DenseMatrix& a, const CsrMatrix& b);

// Format-dispatching product; the output format is chosen from the actual
// output sparsity (AutoFrom*). Aborts if inner dimensions disagree.
Matrix Multiply(const Matrix& a, const Matrix& b, ThreadPool* pool = nullptr);

// Exact number of non-zeros of A B without materializing values — a boolean
// ("pattern") SpGEMM. Used by tests as an independent ground-truth check.
int64_t ProductNnzExact(const CsrMatrix& a, const CsrMatrix& b);

// Parallel pattern SpGEMM: the symbolic pass of the parallel kernel alone.
int64_t ProductNnzExact(const CsrMatrix& a, const CsrMatrix& b,
                        const ParallelConfig& config, ThreadPool* pool);

}  // namespace mnc

#endif  // MNC_MATRIX_OPS_PRODUCT_H_
