// Matrix-product kernels: sparse (Gustavson SpGEMM), dense (blocked GEMM),
// mixed, and the format-dispatching Multiply() entry point that provides the
// FP64 ground truth for the benchmark (§6.1: "we execute FP64 matrix
// operations with internal dispatch of dense and sparse operations").

#ifndef MNC_MATRIX_OPS_PRODUCT_H_
#define MNC_MATRIX_OPS_PRODUCT_H_

#include "mnc/matrix/csr_matrix.h"
#include "mnc/matrix/dense_matrix.h"
#include "mnc/matrix/matrix.h"
#include "mnc/util/parallel.h"
#include "mnc/util/thread_pool.h"

namespace mnc {

// C = A B with both inputs sparse (row-wise Gustavson algorithm).
// expected_nnz (optional, e.g. from an MNC estimate) preallocates the
// output arrays — the "memory preallocation" use of sparsity estimates the
// paper's introduction motivates. The result is identical either way.
CsrMatrix MultiplySparseSparse(const CsrMatrix& a, const CsrMatrix& b,
                               int64_t expected_nnz = -1);

// Parallel two-pass Gustavson SpGEMM behind the ParallelConfig knob: a
// symbolic pass counts each output row's non-zeros, an exclusive scan over
// the counts builds row_ptr, and a fill pass writes every row block into its
// disjoint output slice. Each row accumulates in the same scatter/sort
// order as the sequential kernel, so the result equals MultiplySparseSparse
// bit-for-bit at any thread count.
CsrMatrix MultiplySparseSparse(const CsrMatrix& a, const CsrMatrix& b,
                               const ParallelConfig& config, ThreadPool* pool);

// C = A B with both inputs dense. If pool is non-null, rows of C are
// computed in parallel.
DenseMatrix MultiplyDenseDense(const DenseMatrix& a, const DenseMatrix& b,
                               ThreadPool* pool = nullptr);

// C = A B with sparse A, dense B (dense output).
DenseMatrix MultiplySparseDense(const CsrMatrix& a, const DenseMatrix& b);

// C = A B with dense A, sparse B (dense output).
DenseMatrix MultiplyDenseSparse(const DenseMatrix& a, const CsrMatrix& b);

// ---- Sketch-guided execution --------------------------------------------
//
// The kernels below let an MNC-sketch-informed caller (the guided
// Evaluator, see mnc/ir/evaluator.h) choose allocation strategy, output
// format and per-row accumulator *before* computing. Estimates never change
// values: every guided kernel accumulates each output cell in the same
// ascending-k order as the blind kernels above, so results are bit-identical
// to the blind path — wrong estimates only cost performance (or trigger the
// documented fallbacks), never correctness.

// Counters reported by the guided layer (mnc_tool serve stats, benchmarks).
struct GuidedExecStats {
  int64_t guided_products = 0;     // products that consulted estimates
  int64_t single_pass = 0;         // symbolic pass skipped (bound-sized)
  int64_t two_pass_fallbacks = 0;  // slices over budget -> two-pass kernel
  int64_t overflow_fallbacks = 0;  // a row outgrew its slice -> recompute
  int64_t dense_direct = 0;        // written straight into a DenseMatrix
  int64_t merge_rows = 0;          // rows on the sorted-merge accumulator
  int64_t scatter_rows = 0;        // rows on the dense scatter accumulator
  // Output staging actually reserved by the guided kernels vs. the modeled
  // allocation of the blind path for the same products (see
  // BlindReserveBytesModel). The difference is the "bytes saved" figure in
  // serve stats; it can be negative when bounds over-allocate.
  int64_t guided_reserve_bytes = 0;
  int64_t blind_reserve_bytes = 0;

  void MergeFrom(const GuidedExecStats& other);
};

struct GuidedProductOptions {
  // Budget for the bound-sized output slices of the single-pass kernel
  // (16 bytes per potential entry). When the per-row upper bounds sum past
  // it, the exact sizing of the two-pass kernel wins and the guided product
  // falls back to it.
  int64_t single_pass_budget_bytes = 64LL << 20;  // 64 MB
  // Rows whose estimated output population is at or below this use the
  // sorted small-row merge accumulator instead of touching the O(cols)
  // scatter accumulator.
  int64_t merge_accum_max_nnz = 32;
};

// Modeled output allocation of the blind (unhinted, sequential) SpGEMM for
// a product that stores `nnz` entries: geometric doubling lands col_idx +
// values at the smallest power-of-two capacity >= nnz, 16 bytes per entry.
// Used only for the guided-vs-blind reserve counters.
int64_t BlindReserveBytesModel(int64_t nnz);

// Sketch-guided Gustavson SpGEMM. row_upper[i] bounds output row i's
// pattern count (EstimateProductRows upper bounds); row_estimate (optional,
// may be empty) carries the per-row estimates that drive the accumulator
// choice. With an enabled config + pool this runs a SINGLE-PASS parallel
// variant: output slices are sized by the bounds (no symbolic pass), rows
// fill their slices in parallel, and the slices are compacted exactly like
// the two-pass kernel's. Bounds from propagated (estimated) sketches are
// not guarantees, so a row overflowing its slice aborts the single-pass
// fill and recomputes via the two-pass kernel (overflow_fallbacks);
// slices past the byte budget skip straight to the two-pass kernel
// (two_pass_fallbacks). Sequentially the bounds become a reserve hint and
// rows append with the same per-row accumulator dispatch. All paths return
// the blind kernels' result bit-for-bit.
CsrMatrix MultiplySparseSparseGuided(
    const CsrMatrix& a, const CsrMatrix& b,
    const std::vector<int64_t>& row_upper,
    const std::vector<double>& row_estimate, const GuidedProductOptions& opts,
    const ParallelConfig& config, ThreadPool* pool,
    GuidedExecStats* stats = nullptr);

// C = A B with both inputs sparse, accumulated directly into a dense output
// — for products whose *estimated* sparsity clears the dense dispatch
// threshold, skipping the CSR detour (sparse materialization + ToDense).
// Each cell accumulates av * bv in the same ascending-k order as the CSR
// scatter kernel, and an exactly-cancelled cell ends at +0.0 either way, so
// the result equals MultiplySparseSparse(a, b).ToDense() bit-for-bit. Rows
// are independent; a pool parallelizes them without changing the result.
DenseMatrix MultiplySparseSparseDense(const CsrMatrix& a, const CsrMatrix& b,
                                      ThreadPool* pool = nullptr);

// Format-dispatching product; the output format is chosen from the actual
// output sparsity (AutoFrom*). Aborts if inner dimensions disagree.
// expected_nnz (optional, e.g. an MNC product estimate) is forwarded to the
// sequential sparse-sparse kernel as its pre-allocation hint; the parallel
// two-pass kernel sizes exactly and ignores it, and dense outputs have no
// use for it. The result is identical either way.
Matrix Multiply(const Matrix& a, const Matrix& b, ThreadPool* pool = nullptr,
                int64_t expected_nnz = -1);

// Exact number of non-zeros of A B without materializing values — a boolean
// ("pattern") SpGEMM. Used by tests as an independent ground-truth check.
int64_t ProductNnzExact(const CsrMatrix& a, const CsrMatrix& b);

// Parallel pattern SpGEMM: the symbolic pass of the parallel kernel alone.
int64_t ProductNnzExact(const CsrMatrix& a, const CsrMatrix& b,
                        const ParallelConfig& config, ThreadPool* pool);

}  // namespace mnc

#endif  // MNC_MATRIX_OPS_PRODUCT_H_
