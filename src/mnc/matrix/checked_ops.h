// Status-returning boundary for the Matrix facade's shape-sensitive
// operations.
//
// The bare ops (Multiply, Add, Reshape, ...) treat a shape mismatch as a
// programming error and abort — correct for internal callers whose shapes
// were already validated by the IR. These Try* twins are the entry point for
// shapes that come from *untrusted* sources (user expressions, CLI
// arguments, deserialized metadata): they pre-validate and return
// InvalidArgument with both shapes spelled out instead of aborting.

#ifndef MNC_MATRIX_CHECKED_OPS_H_
#define MNC_MATRIX_CHECKED_OPS_H_

#include "mnc/matrix/matrix.h"
#include "mnc/util/status.h"
#include "mnc/util/thread_pool.h"

namespace mnc {

// expected_nnz (optional, e.g. an MNC product estimate) is forwarded to
// Multiply as its sparse-output pre-allocation hint; it never changes the
// result.
StatusOr<Matrix> TryMultiply(const Matrix& a, const Matrix& b,
                             ThreadPool* pool = nullptr,
                             int64_t expected_nnz = -1);
StatusOr<Matrix> TryAdd(const Matrix& a, const Matrix& b);
StatusOr<Matrix> TryMultiplyEWise(const Matrix& a, const Matrix& b);
StatusOr<Matrix> TryMinEWise(const Matrix& a, const Matrix& b);
StatusOr<Matrix> TryMaxEWise(const Matrix& a, const Matrix& b);
StatusOr<Matrix> TryReshape(const Matrix& a, int64_t rows, int64_t cols);
StatusOr<Matrix> TryDiag(const Matrix& a);
StatusOr<Matrix> TryRBind(const Matrix& a, const Matrix& b);
StatusOr<Matrix> TryCBind(const Matrix& a, const Matrix& b);
// alpha == 0 would silently destroy the non-zero structure, so it is
// rejected like the IR rejects zero-scale nodes.
StatusOr<Matrix> TryScale(const Matrix& a, double alpha);

}  // namespace mnc

#endif  // MNC_MATRIX_CHECKED_OPS_H_
