#include "mnc/matrix/io.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "mnc/matrix/coo_matrix.h"
#include "mnc/util/fail_point.h"

namespace mnc {

namespace {

// Sanity cap against corrupted headers declaring absurd dimensions.
constexpr int64_t kMaxDimension = int64_t{1} << 40;

// The smallest syntactically possible coordinate entry is "i j\n" — at least
// four bytes. Used to pre-validate a declared nnz against the bytes actually
// remaining in a seekable stream.
constexpr int64_t kMinBytesPerEntry = 4;

// Entries reserved up front when the stream size is unknown (non-seekable);
// beyond this the vectors grow geometrically, paid for by real input.
constexpr int64_t kUnknownSizeReserveCap = int64_t{1} << 20;

// Remaining bytes from the current position, or -1 if the stream is not
// seekable. Restores the read position.
int64_t RemainingBytes(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) {
    is.clear();
    is.seekg(pos);
    return -1;
  }
  return static_cast<int64_t>(end - pos);
}

}  // namespace

void WriteMatrixMarket(const CsrMatrix& m, std::ostream& os) {
  os.precision(17);  // round-trip-safe FP64 formatting
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << m.rows() << " " << m.cols() << " " << m.NumNonZeros() << "\n";
  for (int64_t i = 0; i < m.rows(); ++i) {
    const auto idx = m.RowIndices(i);
    const auto val = m.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      os << (i + 1) << " " << (idx[k] + 1) << " " << val[k] << "\n";
    }
  }
}

Status WriteMatrixMarketFile(const CsrMatrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  WriteMatrixMarket(m, out);
  if (!out) {
    return Status::DataLoss("stream write failure writing " + path);
  }
  return Status::Ok();
}

StatusOr<CsrMatrix> ReadMatrixMarket(std::istream& is) {
  if (MncFailPointArmed("mm.read_fail")) {
    return Status::DataLoss(
        "fail point mm.read_fail: simulated short read of Matrix-Market "
        "stream");
  }

  int64_t line_no = 1;
  std::string line;
  if (!std::getline(is, line)) {
    return Status::DataLoss("empty stream: missing %%MatrixMarket banner");
  }
  if (line.rfind("%%MatrixMarket", 0) != 0) {
    return Status::InvalidArgument(
        "line 1: expected a %%MatrixMarket banner, got \"" +
        line.substr(0, 40) + "\"");
  }

  std::istringstream header(line);
  std::string tag, object, format, field, symmetry;
  header >> tag >> object >> format >> field >> symmetry;
  if (object != "matrix" || format != "coordinate") {
    return Status::Unimplemented(
        "line 1: only \"matrix coordinate\" files are supported, got \"" +
        object + " " + format + "\"");
  }
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";
  if (!pattern && field != "real" && field != "integer") {
    return Status::Unimplemented("line 1: unsupported field type \"" + field +
                                 "\" (real, integer, or pattern)");
  }
  if (!symmetric && symmetry != "general") {
    return Status::Unimplemented("line 1: unsupported symmetry \"" + symmetry +
                                 "\" (general or symmetric)");
  }

  // Skip comments.
  do {
    if (!std::getline(is, line)) {
      return Status::DataLoss("unexpected end of stream before the size line");
    }
    ++line_no;
  } while (!line.empty() && line[0] == '%');

  int64_t rows = 0;
  int64_t cols = 0;
  int64_t nnz = 0;
  {
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> nnz)) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) +
          ": malformed size line (expected \"rows cols nnz\"): \"" +
          line.substr(0, 40) + "\"");
    }
    if (rows < 0 || cols < 0 || nnz < 0) {
      return Status::OutOfRange("line " + std::to_string(line_no) +
                                ": negative dimension or nnz in size line");
    }
    if (rows > kMaxDimension || cols > kMaxDimension) {
      return Status::OutOfRange("line " + std::to_string(line_no) +
                                ": dimensions " + std::to_string(rows) +
                                " x " + std::to_string(cols) +
                                " exceed the 2^40 sanity bound");
    }
    // Division form of nnz > rows * cols; the product itself can overflow.
    if (rows > 0 && cols > 0 &&
        (nnz / cols > rows || (nnz / cols == rows && nnz % cols > 0))) {
      return Status::OutOfRange("line " + std::to_string(line_no) +
                                ": declared nnz " + std::to_string(nnz) +
                                " exceeds rows * cols");
    }
  }

  // Pre-validate the declared nnz against the bytes actually remaining:
  // every entry needs at least kMinBytesPerEntry bytes of text, so a header
  // promising more entries than the stream can hold is rejected before any
  // allocation happens.
  const int64_t remaining = RemainingBytes(is);
  if (remaining >= 0 && nnz > remaining / kMinBytesPerEntry) {
    return Status::OutOfRange(
        "size line declares " + std::to_string(nnz) + " entries but only " +
        std::to_string(remaining) + " bytes remain in the stream (needs >= " +
        std::to_string(nnz * kMinBytesPerEntry) + ")");
  }

  CooMatrix coo(rows, cols);
  const int64_t logical_nnz = symmetric ? 2 * nnz : nnz;
  coo.Reserve(remaining >= 0 ? logical_nnz
                             : std::min(logical_nnz, kUnknownSizeReserveCap));
  for (int64_t e = 0; e < nnz; ++e) {
    if (!std::getline(is, line)) {
      return Status::DataLoss("unexpected end of stream at entry " +
                              std::to_string(e + 1) + " of " +
                              std::to_string(nnz) + " (line " +
                              std::to_string(line_no + 1) + ")");
    }
    ++line_no;
    std::istringstream entry(line);
    int64_t i = 0;
    int64_t j = 0;
    double v = 1.0;
    if (!(entry >> i >> j)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": malformed entry \"" +
                                     line.substr(0, 40) + "\"");
    }
    if (!pattern && !(entry >> v)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": entry is missing its value: \"" +
                                     line.substr(0, 40) + "\"");
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      return Status::OutOfRange(
          "line " + std::to_string(line_no) + ": coordinate (" +
          std::to_string(i) + ", " + std::to_string(j) +
          ") outside the declared " + std::to_string(rows) + " x " +
          std::to_string(cols) + " shape");
    }
    coo.Add(i - 1, j - 1, v);
    if (symmetric && i != j) coo.Add(j - 1, i - 1, v);
  }
  return coo.ToCsr();
}

StatusOr<CsrMatrix> ReadMatrixMarketFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open Matrix-Market file " + path);
  }
  return ReadMatrixMarket(in).AddContext("reading " + path);
}

}  // namespace mnc
