#include "mnc/matrix/io.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "mnc/matrix/coo_matrix.h"

namespace mnc {

void WriteMatrixMarket(const CsrMatrix& m, std::ostream& os) {
  os.precision(17);  // round-trip-safe FP64 formatting
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << m.rows() << " " << m.cols() << " " << m.NumNonZeros() << "\n";
  for (int64_t i = 0; i < m.rows(); ++i) {
    const auto idx = m.RowIndices(i);
    const auto val = m.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      os << (i + 1) << " " << (idx[k] + 1) << " " << val[k] << "\n";
    }
  }
}

bool WriteMatrixMarketFile(const CsrMatrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteMatrixMarket(m, out);
  return static_cast<bool>(out);
}

std::optional<CsrMatrix> ReadMatrixMarket(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  if (line.rfind("%%MatrixMarket", 0) != 0) return std::nullopt;

  std::istringstream header(line);
  std::string tag, object, format, field, symmetry;
  header >> tag >> object >> format >> field >> symmetry;
  if (object != "matrix" || format != "coordinate") return std::nullopt;
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";
  if (!pattern && field != "real" && field != "integer") return std::nullopt;
  if (!symmetric && symmetry != "general") return std::nullopt;

  // Skip comments.
  do {
    if (!std::getline(is, line)) return std::nullopt;
  } while (!line.empty() && line[0] == '%');

  int64_t rows = 0;
  int64_t cols = 0;
  int64_t nnz = 0;
  {
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> nnz)) return std::nullopt;
    if (rows < 0 || cols < 0 || nnz < 0) return std::nullopt;
  }

  CooMatrix coo(rows, cols);
  coo.Reserve(symmetric ? 2 * nnz : nnz);
  for (int64_t e = 0; e < nnz; ++e) {
    if (!std::getline(is, line)) return std::nullopt;
    std::istringstream entry(line);
    int64_t i = 0;
    int64_t j = 0;
    double v = 1.0;
    if (!(entry >> i >> j)) return std::nullopt;
    if (!pattern && !(entry >> v)) return std::nullopt;
    if (i < 1 || i > rows || j < 1 || j > cols) return std::nullopt;
    coo.Add(i - 1, j - 1, v);
    if (symmetric && i != j) coo.Add(j - 1, i - 1, v);
  }
  return coo.ToCsr();
}

std::optional<CsrMatrix> ReadMatrixMarketFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadMatrixMarket(in);
}

}  // namespace mnc
