#include "mnc/matrix/io.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "mnc/matrix/coo_matrix.h"
#include "mnc/matrix/mm_header.h"
#include "mnc/util/fail_point.h"

namespace mnc {

namespace {

// Entries reserved up front when the stream size is unknown (non-seekable);
// beyond this the vectors grow geometrically, paid for by real input.
constexpr int64_t kUnknownSizeReserveCap = int64_t{1} << 20;

}  // namespace

void WriteMatrixMarket(const CsrMatrix& m, std::ostream& os) {
  os.precision(17);  // round-trip-safe FP64 formatting
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << m.rows() << " " << m.cols() << " " << m.NumNonZeros() << "\n";
  for (int64_t i = 0; i < m.rows(); ++i) {
    const auto idx = m.RowIndices(i);
    const auto val = m.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      os << (i + 1) << " " << (idx[k] + 1) << " " << val[k] << "\n";
    }
  }
}

Status WriteMatrixMarketFile(const CsrMatrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  WriteMatrixMarket(m, out);
  if (!out) {
    return Status::DataLoss("stream write failure writing " + path);
  }
  return Status::Ok();
}

StatusOr<CsrMatrix> ReadMatrixMarket(std::istream& is) {
  if (MncFailPointArmed("mm.read_fail")) {
    return Status::DataLoss(
        "fail point mm.read_fail: simulated short read of Matrix-Market "
        "stream");
  }

  // Banner, comments, size line, and every pre-allocation sanity check
  // (dimension bounds, nnz vs rows*cols, symmetric 2*nnz overflow, bytes
  // remaining) live in the shared header parser, which the streaming
  // ingestion reader (mnc/ingest) uses too.
  MNC_ASSIGN_OR_RETURN(const MatrixMarketHeader header,
                       ReadMatrixMarketHeader(is));
  const int64_t rows = header.rows;
  const int64_t cols = header.cols;
  const int64_t nnz = header.nnz;
  int64_t line_no = header.line_no;

  CooMatrix coo(rows, cols);
  const int64_t logical_nnz = header.LogicalNnz();
  const int64_t remaining = RemainingStreamBytes(is);
  coo.Reserve(remaining >= 0 ? logical_nnz
                             : std::min(logical_nnz, kUnknownSizeReserveCap));
  std::string line;
  for (int64_t e = 0; e < nnz; ++e) {
    if (!std::getline(is, line)) {
      return Status::DataLoss("unexpected end of stream at entry " +
                              std::to_string(e + 1) + " of " +
                              std::to_string(nnz) + " (line " +
                              std::to_string(line_no + 1) + ")");
    }
    ++line_no;
    std::istringstream entry(line);
    int64_t i = 0;
    int64_t j = 0;
    double v = 1.0;
    if (!(entry >> i >> j)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": malformed entry \"" +
                                     line.substr(0, 40) + "\"");
    }
    if (!header.pattern && !(entry >> v)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": entry is missing its value: \"" +
                                     line.substr(0, 40) + "\"");
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      return Status::OutOfRange(
          "line " + std::to_string(line_no) + ": coordinate (" +
          std::to_string(i) + ", " + std::to_string(j) +
          ") outside the declared " + std::to_string(rows) + " x " +
          std::to_string(cols) + " shape");
    }
    coo.Add(i - 1, j - 1, v);
    if (header.symmetric && i != j) coo.Add(j - 1, i - 1, v);
  }
  return coo.ToCsr();
}

StatusOr<CsrMatrix> ReadMatrixMarketFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open Matrix-Market file " + path);
  }
  return ReadMatrixMarket(in).AddContext("reading " + path);
}

}  // namespace mnc
