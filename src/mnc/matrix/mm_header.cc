#include "mnc/matrix/mm_header.h"

#include <cstdint>
#include <istream>
#include <limits>
#include <sstream>
#include <string>

namespace mnc {

int64_t RemainingStreamBytes(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) {
    is.clear();
    is.seekg(pos);
    return -1;
  }
  return static_cast<int64_t>(end - pos);
}

StatusOr<MatrixMarketHeader> ReadMatrixMarketHeader(std::istream& is) {
  int64_t line_no = 1;
  std::string line;
  if (!std::getline(is, line)) {
    return Status::DataLoss("empty stream: missing %%MatrixMarket banner");
  }
  if (line.rfind("%%MatrixMarket", 0) != 0) {
    return Status::InvalidArgument(
        "line 1: expected a %%MatrixMarket banner, got \"" +
        line.substr(0, 40) + "\"");
  }

  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (object != "matrix" || format != "coordinate") {
    return Status::Unimplemented(
        "line 1: only \"matrix coordinate\" files are supported, got \"" +
        object + " " + format + "\"");
  }
  MatrixMarketHeader header;
  header.pattern = field == "pattern";
  header.symmetric = symmetry == "symmetric";
  if (!header.pattern && field != "real" && field != "integer") {
    return Status::Unimplemented("line 1: unsupported field type \"" + field +
                                 "\" (real, integer, or pattern)");
  }
  if (!header.symmetric && symmetry != "general") {
    return Status::Unimplemented("line 1: unsupported symmetry \"" + symmetry +
                                 "\" (general or symmetric)");
  }

  // Skip comments.
  do {
    if (!std::getline(is, line)) {
      return Status::DataLoss("unexpected end of stream before the size line");
    }
    ++line_no;
  } while (!line.empty() && line[0] == '%');

  {
    std::istringstream sizes(line);
    if (!(sizes >> header.rows >> header.cols >> header.nnz)) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) +
          ": malformed size line (expected \"rows cols nnz\"): \"" +
          line.substr(0, 40) + "\"");
    }
    if (header.rows < 0 || header.cols < 0 || header.nnz < 0) {
      return Status::OutOfRange("line " + std::to_string(line_no) +
                                ": negative dimension or nnz in size line");
    }
    if (header.rows > kMaxMatrixMarketDimension ||
        header.cols > kMaxMatrixMarketDimension) {
      return Status::OutOfRange("line " + std::to_string(line_no) +
                                ": dimensions " + std::to_string(header.rows) +
                                " x " + std::to_string(header.cols) +
                                " exceed the 2^40 sanity bound");
    }
    // Division form of nnz > rows * cols; the product itself can overflow
    // int64 (two 2^40 dimensions multiply to 2^80).
    if (header.rows > 0 && header.cols > 0 &&
        (header.nnz / header.cols > header.rows ||
         (header.nnz / header.cols == header.rows &&
          header.nnz % header.cols > 0))) {
      return Status::OutOfRange("line " + std::to_string(line_no) +
                                ": declared nnz " + std::to_string(header.nnz) +
                                " exceeds rows * cols");
    }
    // Explicit 2 * nnz overflow check before anyone computes the symmetric
    // logical entry count (LogicalNnz) to size an allocation.
    if (header.symmetric &&
        header.nnz > std::numeric_limits<int64_t>::max() / 2) {
      return Status::OutOfRange(
          "line " + std::to_string(line_no) + ": symmetric nnz " +
          std::to_string(header.nnz) + " overflows the 2*nnz mirrored count");
    }
  }
  header.line_no = line_no;

  // Pre-validate the declared nnz against the bytes actually remaining:
  // every entry needs at least kMinMatrixMarketBytesPerEntry bytes of text,
  // so a header promising more entries than the stream can hold is rejected
  // before any allocation happens.
  const int64_t remaining = RemainingStreamBytes(is);
  if (remaining >= 0 &&
      header.nnz > remaining / kMinMatrixMarketBytesPerEntry) {
    return Status::OutOfRange(
        "size line declares " + std::to_string(header.nnz) +
        " entries but only " + std::to_string(remaining) +
        " bytes remain in the stream (needs >= " +
        std::to_string(header.nnz * kMinMatrixMarketBytesPerEntry) + ")");
  }
  return header;
}

}  // namespace mnc
