// Compressed sparse column (CSC) matrix.
//
// The column-major counterpart of CsrMatrix, for pipelines whose access
// pattern is per-column (feature-wise preprocessing, column sampling,
// right-hand sides of products). Invariants mirror CSR: col_ptr has cols+1
// monotone entries, row indices are strictly increasing within each column,
// stored values are non-zero.

#ifndef MNC_MATRIX_CSC_MATRIX_H_
#define MNC_MATRIX_CSC_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "mnc/util/check.h"

namespace mnc {

class CsrMatrix;

class CscMatrix {
 public:
  // Creates an empty (all-zero) rows x cols matrix.
  CscMatrix(int64_t rows, int64_t cols);

  // Creates a CSC matrix from raw arrays; validates the invariants.
  CscMatrix(int64_t rows, int64_t cols, std::vector<int64_t> col_ptr,
            std::vector<int64_t> row_idx, std::vector<double> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t NumNonZeros() const { return static_cast<int64_t>(values_.size()); }
  double Sparsity() const;

  int64_t ColNnz(int64_t j) const {
    MNC_DCHECK(j >= 0 && j < cols_);
    return col_ptr_[static_cast<size_t>(j) + 1] -
           col_ptr_[static_cast<size_t>(j)];
  }

  std::span<const int64_t> ColIndices(int64_t j) const {
    MNC_DCHECK(j >= 0 && j < cols_);
    return {row_idx_.data() + col_ptr_[static_cast<size_t>(j)],
            static_cast<size_t>(ColNnz(j))};
  }
  std::span<const double> ColValues(int64_t j) const {
    MNC_DCHECK(j >= 0 && j < cols_);
    return {values_.data() + col_ptr_[static_cast<size_t>(j)],
            static_cast<size_t>(ColNnz(j))};
  }

  // Value at (i, j); 0.0 if not stored. O(log ColNnz(j)).
  double At(int64_t i, int64_t j) const;

  const std::vector<int64_t>& col_ptr() const { return col_ptr_; }
  const std::vector<int64_t>& row_idx() const { return row_idx_; }
  const std::vector<double>& values() const { return values_; }

  std::vector<int64_t> NnzPerRow() const;
  std::vector<int64_t> NnzPerCol() const;

  // Conversions (O(nnz + m + n) counting sort).
  static CscMatrix FromCsr(const CsrMatrix& csr);
  CsrMatrix ToCsr() const;

  bool Equals(const CscMatrix& other) const;
  void CheckInvariants() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> col_ptr_;
  std::vector<int64_t> row_idx_;
  std::vector<double> values_;
};

}  // namespace mnc

#endif  // MNC_MATRIX_CSC_MATRIX_H_
