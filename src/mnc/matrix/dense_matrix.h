// Row-major dense FP64 matrix.
//
// Used as the dense half of the engine's dense/sparse dispatch and as the
// ground-truth representation in tests. Cells holding exactly 0.0 are
// considered zero for sparsity purposes (assumptions A1/A2 of the paper: no
// cancellation, no NaNs).

#ifndef MNC_MATRIX_DENSE_MATRIX_H_
#define MNC_MATRIX_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "mnc/util/check.h"

namespace mnc {

class CsrMatrix;

class DenseMatrix {
 public:
  // Creates a rows x cols matrix of zeros.
  DenseMatrix(int64_t rows, int64_t cols);

  // Creates a matrix from a row-major value buffer (size rows * cols).
  DenseMatrix(int64_t rows, int64_t cols, std::vector<double> values);

  DenseMatrix(const DenseMatrix&) = default;
  DenseMatrix& operator=(const DenseMatrix&) = default;
  DenseMatrix(DenseMatrix&&) = default;
  DenseMatrix& operator=(DenseMatrix&&) = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double At(int64_t i, int64_t j) const {
    MNC_DCHECK(InBounds(i, j));
    return values_[static_cast<size_t>(i * cols_ + j)];
  }

  void Set(int64_t i, int64_t j, double v) {
    MNC_DCHECK(InBounds(i, j));
    values_[static_cast<size_t>(i * cols_ + j)] = v;
  }

  // Direct access to the row-major buffer (for kernels).
  const double* data() const { return values_.data(); }
  double* data() { return values_.data(); }

  const double* row(int64_t i) const {
    MNC_DCHECK(i >= 0 && i < rows_);
    return values_.data() + i * cols_;
  }
  double* row(int64_t i) {
    MNC_DCHECK(i >= 0 && i < rows_);
    return values_.data() + i * cols_;
  }

  // Number of cells with a non-zero value.
  int64_t NumNonZeros() const;

  // nnz / (rows * cols); 0 for an empty-shaped matrix.
  double Sparsity() const;

  // Converts to CSR, dropping zero cells.
  CsrMatrix ToCsr() const;

  // Exact element-wise equality (used by tests).
  bool Equals(const DenseMatrix& other) const;

 private:
  bool InBounds(int64_t i, int64_t j) const {
    return i >= 0 && i < rows_ && j >= 0 && j < cols_;
  }

  int64_t rows_;
  int64_t cols_;
  std::vector<double> values_;
};

}  // namespace mnc

#endif  // MNC_MATRIX_DENSE_MATRIX_H_
