// Reorganization operations from §4 of the paper: transpose, row-wise
// reshape, diag (vector ↔ matrix diagonal), and rbind/cbind concatenation.

#ifndef MNC_MATRIX_OPS_REORG_H_
#define MNC_MATRIX_OPS_REORG_H_

#include "mnc/matrix/csr_matrix.h"
#include "mnc/matrix/dense_matrix.h"
#include "mnc/matrix/matrix.h"

namespace mnc {

// C = A^T. O(nnz + m + n) counting-sort transpose.
CsrMatrix TransposeSparse(const CsrMatrix& a);
DenseMatrix TransposeDense(const DenseMatrix& a);
Matrix Transpose(const Matrix& a);

// Row-wise reshape of an m x n matrix into k x l with m*n == k*l: cell
// (i, j) moves to linear position i*n + j read in row-major order.
CsrMatrix ReshapeSparse(const CsrMatrix& a, int64_t k, int64_t l);
Matrix Reshape(const Matrix& a, int64_t k, int64_t l);

// diag(v): places an m x 1 column vector onto the diagonal of an m x m
// matrix (the "Scale" transformation matrix of B1.2).
CsrMatrix DiagVectorToMatrix(const CsrMatrix& v);

// diag(A): extracts the diagonal of a square matrix as an m x 1 vector.
CsrMatrix DiagMatrixToVector(const CsrMatrix& a);

Matrix Diag(const Matrix& a);

// rbind(A, B): stacks rows (requires equal column counts).
CsrMatrix RBindSparse(const CsrMatrix& a, const CsrMatrix& b);
Matrix RBind(const Matrix& a, const Matrix& b);

// cbind(A, B): concatenates columns (requires equal row counts).
CsrMatrix CBindSparse(const CsrMatrix& a, const CsrMatrix& b);
Matrix CBind(const Matrix& a, const Matrix& b);

}  // namespace mnc

#endif  // MNC_MATRIX_OPS_REORG_H_
