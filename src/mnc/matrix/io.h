// Matrix-Market (coordinate) I/O.
//
// Lets users bring the paper's original datasets (AMiner, Covertype, Email,
// ...) when they have them on disk, instead of the synthetic stand-ins; also
// used by tests for round-trip checks.
//
// Matrix-Market files are untrusted input: readers return StatusOr with a
// descriptive, line-numbered error on malformed content, and pre-validate
// declared dimensions/nnz against the stream's remaining size so a corrupt
// header can never force a huge allocation.

#ifndef MNC_MATRIX_IO_H_
#define MNC_MATRIX_IO_H_

#include <iosfwd>
#include <string>

#include "mnc/matrix/csr_matrix.h"
#include "mnc/util/status.h"

namespace mnc {

// Writes `m` in MatrixMarket coordinate format ("%%MatrixMarket matrix
// coordinate real general").
void WriteMatrixMarket(const CsrMatrix& m, std::ostream& os);
Status WriteMatrixMarketFile(const CsrMatrix& m, const std::string& path);

// Reads a MatrixMarket coordinate file. Supports the "general" and
// "symmetric" storage schemes and the "pattern" field (entries become 1.0).
// Errors name the offending line. Fail point "mm.read_fail" simulates a
// short read.
StatusOr<CsrMatrix> ReadMatrixMarket(std::istream& is);
StatusOr<CsrMatrix> ReadMatrixMarketFile(const std::string& path);

}  // namespace mnc

#endif  // MNC_MATRIX_IO_H_
