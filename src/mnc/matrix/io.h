// Matrix-Market (coordinate) I/O.
//
// Lets users bring the paper's original datasets (AMiner, Covertype, Email,
// ...) when they have them on disk, instead of the synthetic stand-ins; also
// used by tests for round-trip checks.

#ifndef MNC_MATRIX_IO_H_
#define MNC_MATRIX_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "mnc/matrix/csr_matrix.h"

namespace mnc {

// Writes `m` in MatrixMarket coordinate format ("%%MatrixMarket matrix
// coordinate real general").
void WriteMatrixMarket(const CsrMatrix& m, std::ostream& os);
bool WriteMatrixMarketFile(const CsrMatrix& m, const std::string& path);

// Reads a MatrixMarket coordinate file. Returns std::nullopt on malformed
// input. Supports the "general" and "symmetric" storage schemes and the
// "pattern" field (entries become 1.0).
std::optional<CsrMatrix> ReadMatrixMarket(std::istream& is);
std::optional<CsrMatrix> ReadMatrixMarketFile(const std::string& path);

}  // namespace mnc

#endif  // MNC_MATRIX_IO_H_
