// Element-wise operations: addition, multiplication (Hadamard), and the
// zero-structure comparisons A != 0 / A == 0 from §4 of the paper.

#ifndef MNC_MATRIX_OPS_EWISE_H_
#define MNC_MATRIX_OPS_EWISE_H_

#include "mnc/matrix/csr_matrix.h"
#include "mnc/matrix/dense_matrix.h"
#include "mnc/matrix/matrix.h"

namespace mnc {

// C = A + B (sparse kernel, sorted-merge per row).
CsrMatrix AddSparseSparse(const CsrMatrix& a, const CsrMatrix& b);

// C = A ⊙ B (sparse kernel, sorted-intersection per row).
CsrMatrix MultiplyEWiseSparseSparse(const CsrMatrix& a, const CsrMatrix& b);

// Dense kernels.
DenseMatrix AddDenseDense(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix MultiplyEWiseDenseDense(const DenseMatrix& a,
                                    const DenseMatrix& b);

// Format-dispatching entry points (inputs may be dense or sparse; the output
// format is chosen from the actual output sparsity).
Matrix Add(const Matrix& a, const Matrix& b);
Matrix MultiplyEWise(const Matrix& a, const Matrix& b);

// C = (A != 0): the 0/1 indicator of the non-zero structure. Preserves
// sparsity, so the output keeps A's format.
Matrix NotEqualZero(const Matrix& a);
CsrMatrix NotEqualZeroSparse(const CsrMatrix& a);

// C = (A == 0): the complement indicator; typically dense.
Matrix EqualZero(const Matrix& a);

// C = min(A, B) / C = max(A, B), element-wise. For non-negative inputs
// (assumption A1 plus the library's positive-value generators), min behaves
// like an intersection of patterns and max like a union — §6.6's B3.5 notes
// max as the linear-algebra OR.
CsrMatrix MinEWiseSparseSparse(const CsrMatrix& a, const CsrMatrix& b);
CsrMatrix MaxEWiseSparseSparse(const CsrMatrix& a, const CsrMatrix& b);
Matrix MinEWise(const Matrix& a, const Matrix& b);
Matrix MaxEWise(const Matrix& a, const Matrix& b);

// C = alpha * A (scalar multiply; structure-preserving for alpha != 0).
CsrMatrix ScaleSparse(const CsrMatrix& a, double alpha);
Matrix Scale(const Matrix& a, double alpha);

// rowSums(A): m x 1 vector of row sums; colSums(A): 1 x n vector of column
// sums. Under A1 (no cancellation) a row/column sum is non-zero exactly
// when the row/column is non-empty.
CsrMatrix RowSumsSparse(const CsrMatrix& a);
CsrMatrix ColSumsSparse(const CsrMatrix& a);
Matrix RowSums(const Matrix& a);
Matrix ColSums(const Matrix& a);

}  // namespace mnc

#endif  // MNC_MATRIX_OPS_EWISE_H_
