// Coordinate-format (COO) matrix builder.
//
// COO is the ingestion format: generators and readers append (row, col,
// value) triples in any order, then convert to CSR. Duplicate coordinates
// are summed during conversion; zero values are dropped (assumption A1).

#ifndef MNC_MATRIX_COO_MATRIX_H_
#define MNC_MATRIX_COO_MATRIX_H_

#include <cstdint>
#include <vector>

namespace mnc {

class CsrMatrix;

class CooMatrix {
 public:
  CooMatrix(int64_t rows, int64_t cols);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  // Number of triples added so far (before deduplication).
  int64_t NumEntries() const { return static_cast<int64_t>(rows_idx_.size()); }

  // Appends one triple. Zero values are silently ignored.
  void Add(int64_t i, int64_t j, double v);

  // Reserves space for n triples.
  void Reserve(int64_t n);

  // Converts to CSR: sorts by (row, col), sums duplicates, drops entries
  // that sum to zero.
  CsrMatrix ToCsr() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> rows_idx_;
  std::vector<int64_t> cols_idx_;
  std::vector<double> values_;
};

}  // namespace mnc

#endif  // MNC_MATRIX_COO_MATRIX_H_
