// Random matrix generators.
//
// These are the generic primitives the SparsEst benchmark builds on:
// uniformly sparse matrices, dense matrices, permutation/selection/diagonal
// transformation matrices (§1 of the paper: the "sources of sparse
// matrices"), and structured generators with prescribed per-row or per-column
// non-zero distributions. All values are drawn from [0.5, 1.5] so that
// assumption A1 (no cancellation) holds by construction.

#ifndef MNC_MATRIX_GENERATE_H_
#define MNC_MATRIX_GENERATE_H_

#include <cstdint>
#include <vector>

#include "mnc/matrix/csr_matrix.h"
#include "mnc/matrix/dense_matrix.h"
#include "mnc/util/random.h"

namespace mnc {

// Sparse rows x cols matrix with non-zeros placed uniformly at random so
// that nnz == round(sparsity * rows * cols) exactly (sampling without
// replacement over cells).
CsrMatrix GenerateUniformSparse(int64_t rows, int64_t cols, double sparsity,
                                Rng& rng);

// Fully dense rows x cols matrix with values in [0.5, 1.5].
DenseMatrix GenerateDense(int64_t rows, int64_t cols, Rng& rng);

// Dense matrix where a fraction `zero_fraction` of cells, uniformly chosen,
// is zero (e.g., sparsity 0.99 inputs for Fig. 7).
DenseMatrix GenerateAlmostDense(int64_t rows, int64_t cols,
                                double zero_fraction, Rng& rng);

// n x n random permutation matrix (exactly one 1 per row and per column).
CsrMatrix GeneratePermutation(int64_t n, Rng& rng);

// k x n selection matrix extracting the given rows: P[i, selected[i]] = 1.
// Multiplying P X picks rows `selected` of X.
CsrMatrix GenerateSelection(const std::vector<int64_t>& selected, int64_t n);

// n x n diagonal matrix with non-zero diagonal values.
CsrMatrix GenerateDiagonal(int64_t n, Rng& rng);

// rows x cols 0/1 matrix with exactly one non-zero per row; the column of
// row i is drawn from `column_dist` (e.g., a Zipf distribution). This is the
// shape of token-sequence, selection, and sampling matrices.
CsrMatrix GenerateOneNnzPerRow(int64_t rows, int64_t cols,
                               const ZipfDistribution& column_dist, Rng& rng);

// Sparse matrix with a prescribed number of non-zeros per column
// (col_nnz[j] <= rows); row positions are uniform without replacement.
CsrMatrix GenerateWithColumnCounts(int64_t rows,
                                   const std::vector<int64_t>& col_nnz,
                                   Rng& rng);

// Sparse matrix with a prescribed number of non-zeros per row
// (row_nnz[i] <= cols); column positions are uniform without replacement.
CsrMatrix GenerateWithRowCounts(int64_t cols,
                                const std::vector<int64_t>& row_nnz,
                                Rng& rng);

// Directed-graph adjacency matrix (n x n) with ~avg_degree edges per node;
// out-degrees and target popularity are Zipf(skew)-distributed, giving the
// heavy-tailed degree profile of citation/email networks.
CsrMatrix GenerateGraphAdjacency(int64_t n, double avg_degree, double skew,
                                 Rng& rng);

}  // namespace mnc

#endif  // MNC_MATRIX_GENERATE_H_
