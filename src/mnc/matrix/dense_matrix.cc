#include "mnc/matrix/dense_matrix.h"

#include "mnc/matrix/csr_matrix.h"

namespace mnc {

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols) {
  MNC_CHECK_GE(rows, 0);
  MNC_CHECK_GE(cols, 0);
  values_.assign(static_cast<size_t>(rows * cols), 0.0);
}

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols,
                         std::vector<double> values)
    : rows_(rows), cols_(cols), values_(std::move(values)) {
  MNC_CHECK_GE(rows, 0);
  MNC_CHECK_GE(cols, 0);
  MNC_CHECK_EQ(static_cast<int64_t>(values_.size()), rows * cols);
}

int64_t DenseMatrix::NumNonZeros() const {
  int64_t nnz = 0;
  for (double v : values_) {
    if (v != 0.0) ++nnz;
  }
  return nnz;
}

double DenseMatrix::Sparsity() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(NumNonZeros()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

CsrMatrix DenseMatrix::ToCsr() const { return CsrMatrix::FromDense(*this); }

bool DenseMatrix::Equals(const DenseMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         values_ == other.values_;
}

}  // namespace mnc
