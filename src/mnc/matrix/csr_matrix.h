// Compressed sparse row (CSR) matrix — the canonical sparse format.
//
// Invariants: row_ptr has rows+1 monotone entries; column indices are
// strictly increasing within each row; stored values are non-zero. These are
// the same invariants SystemML's SparseBlockCSR maintains and everything in
// the library (kernels, sketches, estimators) relies on them.

#ifndef MNC_MATRIX_CSR_MATRIX_H_
#define MNC_MATRIX_CSR_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "mnc/util/check.h"

namespace mnc {

class DenseMatrix;

class CsrMatrix {
 public:
  // Creates an empty (all-zero) rows x cols matrix.
  CsrMatrix(int64_t rows, int64_t cols);

  // Creates a CSR matrix from raw arrays; validates the invariants above.
  CsrMatrix(int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
            std::vector<int64_t> col_idx, std::vector<double> values);

  CsrMatrix(const CsrMatrix&) = default;
  CsrMatrix& operator=(const CsrMatrix&) = default;
  CsrMatrix(CsrMatrix&&) = default;
  CsrMatrix& operator=(CsrMatrix&&) = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t NumNonZeros() const {
    return static_cast<int64_t>(values_.size());
  }
  double Sparsity() const;

  // Number of stored entries in row i.
  int64_t RowNnz(int64_t i) const {
    MNC_DCHECK(i >= 0 && i < rows_);
    return row_ptr_[static_cast<size_t>(i) + 1] -
           row_ptr_[static_cast<size_t>(i)];
  }

  // Column indices / values of row i, as contiguous spans.
  std::span<const int64_t> RowIndices(int64_t i) const {
    MNC_DCHECK(i >= 0 && i < rows_);
    return {col_idx_.data() + row_ptr_[static_cast<size_t>(i)],
            static_cast<size_t>(RowNnz(i))};
  }
  std::span<const double> RowValues(int64_t i) const {
    MNC_DCHECK(i >= 0 && i < rows_);
    return {values_.data() + row_ptr_[static_cast<size_t>(i)],
            static_cast<size_t>(RowNnz(i))};
  }

  // Value at (i, j); 0.0 if not stored. O(log RowNnz(i)).
  double At(int64_t i, int64_t j) const;

  // Raw array access for kernels.
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  // Per-row / per-column non-zero counts (rowSums(A != 0), colSums(A != 0)).
  std::vector<int64_t> NnzPerRow() const;
  std::vector<int64_t> NnzPerCol() const;

  // True if the matrix is square with an all-non-zero diagonal and no
  // off-diagonal entries ("fully diagonal" in the sense of Eq. 12).
  bool IsFullyDiagonal() const;

  // Conversions.
  DenseMatrix ToDense() const;
  static CsrMatrix FromDense(const DenseMatrix& dense);

  // Exact structural + value equality (used by tests).
  bool Equals(const CsrMatrix& other) const;

  // Validates the CSR invariants; aborts on violation. Cheap enough to call
  // from tests after every kernel.
  void CheckInvariants() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace mnc

#endif  // MNC_MATRIX_CSR_MATRIX_H_
