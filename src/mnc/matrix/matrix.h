// Format-dispatching matrix facade.
//
// A Matrix holds either a DenseMatrix or a CsrMatrix behind shared,
// immutable storage, mirroring how ML systems (SystemML, Julia, MLlib)
// dispatch between dense and sparse physical operators. The dispatch
// threshold follows footnote 3 of the paper: dense layout is used only when
// sparsity >= 0.4.

#ifndef MNC_MATRIX_MATRIX_H_
#define MNC_MATRIX_MATRIX_H_

#include <cstdint>
#include <memory>

#include "mnc/matrix/csr_matrix.h"
#include "mnc/matrix/dense_matrix.h"

namespace mnc {

// Sparsity at or above which dense layouts are preferred (SystemML default).
inline constexpr double kDenseDispatchThreshold = 0.4;

class Matrix {
 public:
  // Wraps a dense matrix without changing format.
  static Matrix Dense(DenseMatrix dense);

  // Wraps a CSR matrix without changing format.
  static Matrix Sparse(CsrMatrix csr);

  // Wraps a CSR matrix and converts it to dense if its sparsity is at or
  // above kDenseDispatchThreshold.
  static Matrix AutoFromCsr(CsrMatrix csr);

  // Wraps a dense matrix and converts it to CSR if its sparsity is below
  // kDenseDispatchThreshold.
  static Matrix AutoFromDense(DenseMatrix dense);

  // Format decision from an *estimated* sparsity (sketch-guided execution):
  // when the estimate clears the dispatch threshold the dense result is
  // wrapped as-is, skipping AutoFromDense's O(rows * cols) non-zero scan;
  // otherwise defers to the scanning AutoFromDense so the stored format
  // still matches the actual data even when the estimate is wrong.
  static Matrix AutoFromDenseEstimated(DenseMatrix dense,
                                       double estimated_sparsity);

  bool is_dense() const { return dense_ != nullptr; }

  int64_t rows() const;
  int64_t cols() const;
  int64_t NumNonZeros() const;
  double Sparsity() const;

  // Direct access; aborts if the matrix is stored in the other format.
  const DenseMatrix& dense() const;
  const CsrMatrix& csr() const;

  // Format conversions (copying when the format differs).
  CsrMatrix AsCsr() const;
  DenseMatrix AsDense() const;

  // Value-level equality irrespective of physical format.
  bool EqualsLogically(const Matrix& other) const;

  // Identity of the shared, immutable storage block. Two Matrix values that
  // copy-share the same underlying DenseMatrix/CsrMatrix return the same
  // key, which lets long-lived caches (the estimation service) map storage
  // to a content fingerprint without rescanning the data. The key is only
  // meaningful while some Matrix still pins the storage alive.
  const void* storage_key() const {
    return dense_ != nullptr ? static_cast<const void*>(dense_.get())
                             : static_cast<const void*>(csr_.get());
  }

 private:
  Matrix() = default;

  std::shared_ptr<const DenseMatrix> dense_;
  std::shared_ptr<const CsrMatrix> csr_;
};

// 64-bit content fingerprint of the logical matrix: a CRC32 over the
// non-zero structure (dims plus every stored (i, j) coordinate) paired with
// a CRC32 over the non-zero values, independent of physical format — the
// dense and sparse representations of the same logical matrix fingerprint
// identically. Used by the estimation service's sketch catalog to detect
// re-registration of identical data. Not cryptographic: collisions are
// possible in principle (~2^-64 for unrelated inputs) and acceptable for
// cache identity.
uint64_t MatrixFingerprint(const Matrix& m);

}  // namespace mnc

#endif  // MNC_MATRIX_MATRIX_H_
