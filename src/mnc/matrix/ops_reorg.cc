#include "mnc/matrix/ops_reorg.h"

#include <vector>

namespace mnc {

CsrMatrix TransposeSparse(const CsrMatrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t nnz = a.NumNonZeros();

  // Counting sort by column index.
  std::vector<int64_t> row_ptr(static_cast<size_t>(n) + 1, 0);
  for (int64_t j : a.col_idx()) ++row_ptr[static_cast<size_t>(j) + 1];
  for (size_t j = 0; j < static_cast<size_t>(n); ++j) {
    row_ptr[j + 1] += row_ptr[j];
  }
  std::vector<int64_t> col_idx(static_cast<size_t>(nnz));
  std::vector<double> values(static_cast<size_t>(nnz));
  std::vector<int64_t> next = row_ptr;  // insertion cursor per output row
  for (int64_t i = 0; i < m; ++i) {
    const auto idx = a.RowIndices(i);
    const auto val = a.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      const int64_t pos = next[static_cast<size_t>(idx[k])]++;
      col_idx[static_cast<size_t>(pos)] = i;
      values[static_cast<size_t>(pos)] = val[k];
    }
  }
  return CsrMatrix(n, m, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

DenseMatrix TransposeDense(const DenseMatrix& a) {
  DenseMatrix c(a.cols(), a.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      c.Set(j, i, a.At(i, j));
    }
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  if (a.is_dense()) return Matrix::Dense(TransposeDense(a.dense()));
  return Matrix::Sparse(TransposeSparse(a.csr()));
}

CsrMatrix ReshapeSparse(const CsrMatrix& a, int64_t k, int64_t l) {
  MNC_CHECK_EQ(a.rows() * a.cols(), k * l);
  const int64_t n = a.cols();
  std::vector<int64_t> row_ptr(static_cast<size_t>(k) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<size_t>(a.NumNonZeros()));
  values.reserve(static_cast<size_t>(a.NumNonZeros()));

  // Row-major linearization preserves entry order across a row-wise reshape,
  // so a single pass in CSR order emits the output in CSR order too.
  for (int64_t i = 0; i < a.rows(); ++i) {
    const auto idx = a.RowIndices(i);
    const auto val = a.RowValues(i);
    for (size_t p = 0; p < idx.size(); ++p) {
      const int64_t linear = i * n + idx[p];
      const int64_t oi = linear / l;
      const int64_t oj = linear % l;
      col_idx.push_back(oj);
      values.push_back(val[p]);
      ++row_ptr[static_cast<size_t>(oi) + 1];
    }
  }
  for (size_t r = 0; r < static_cast<size_t>(k); ++r) {
    row_ptr[r + 1] += row_ptr[r];
  }
  return CsrMatrix(k, l, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

Matrix Reshape(const Matrix& a, int64_t k, int64_t l) {
  if (a.is_dense()) {
    MNC_CHECK_EQ(a.rows() * a.cols(), k * l);
    // Row-major layout is reshape-invariant: reuse the buffer.
    std::vector<double> buf(a.dense().data(),
                            a.dense().data() + a.dense().size());
    return Matrix::Dense(DenseMatrix(k, l, std::move(buf)));
  }
  return Matrix::Sparse(ReshapeSparse(a.csr(), k, l));
}

CsrMatrix DiagVectorToMatrix(const CsrMatrix& v) {
  MNC_CHECK_EQ(v.cols(), 1);
  const int64_t m = v.rows();
  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  for (int64_t i = 0; i < m; ++i) {
    const auto val = v.RowValues(i);
    if (!val.empty()) {
      col_idx.push_back(i);
      values.push_back(val[0]);
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m, m, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix DiagMatrixToVector(const CsrMatrix& a) {
  MNC_CHECK_EQ(a.rows(), a.cols());
  const int64_t m = a.rows();
  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  for (int64_t i = 0; i < m; ++i) {
    const double v = a.At(i, i);
    if (v != 0.0) {
      col_idx.push_back(0);
      values.push_back(v);
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m, 1, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

Matrix Diag(const Matrix& a) {
  const CsrMatrix s = a.AsCsr();
  if (s.cols() == 1) return Matrix::Sparse(DiagVectorToMatrix(s));
  return Matrix::AutoFromCsr(DiagMatrixToVector(s));
}

CsrMatrix RBindSparse(const CsrMatrix& a, const CsrMatrix& b) {
  MNC_CHECK_EQ(a.cols(), b.cols());
  std::vector<int64_t> row_ptr = a.row_ptr();
  row_ptr.reserve(row_ptr.size() + static_cast<size_t>(b.rows()));
  const int64_t offset = a.NumNonZeros();
  for (size_t r = 1; r < b.row_ptr().size(); ++r) {
    row_ptr.push_back(b.row_ptr()[r] + offset);
  }
  std::vector<int64_t> col_idx = a.col_idx();
  col_idx.insert(col_idx.end(), b.col_idx().begin(), b.col_idx().end());
  std::vector<double> values = a.values();
  values.insert(values.end(), b.values().begin(), b.values().end());
  return CsrMatrix(a.rows() + b.rows(), a.cols(), std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

Matrix RBind(const Matrix& a, const Matrix& b) {
  return Matrix::AutoFromCsr(RBindSparse(a.AsCsr(), b.AsCsr()));
}

CsrMatrix CBindSparse(const CsrMatrix& a, const CsrMatrix& b) {
  MNC_CHECK_EQ(a.rows(), b.rows());
  const int64_t m = a.rows();
  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<size_t>(a.NumNonZeros() + b.NumNonZeros()));
  values.reserve(col_idx.capacity());
  for (int64_t i = 0; i < m; ++i) {
    for (size_t k = 0; k < a.RowIndices(i).size(); ++k) {
      col_idx.push_back(a.RowIndices(i)[k]);
      values.push_back(a.RowValues(i)[k]);
    }
    for (size_t k = 0; k < b.RowIndices(i).size(); ++k) {
      col_idx.push_back(b.RowIndices(i)[k] + a.cols());
      values.push_back(b.RowValues(i)[k]);
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m, a.cols() + b.cols(), std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

Matrix CBind(const Matrix& a, const Matrix& b) {
  return Matrix::AutoFromCsr(CBindSparse(a.AsCsr(), b.AsCsr()));
}

}  // namespace mnc
