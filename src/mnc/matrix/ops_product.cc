#include "mnc/matrix/ops_product.h"

#include <algorithm>
#include <vector>

#include "mnc/kernels/kernels.h"
#include "mnc/util/arena.h"

namespace mnc {

CsrMatrix MultiplySparseSparse(const CsrMatrix& a, const CsrMatrix& b,
                               int64_t expected_nnz) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t l = b.cols();

  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  if (expected_nnz > 0) {
    const int64_t cap = std::min(expected_nnz, m * l);
    col_idx.reserve(static_cast<size_t>(cap));
    values.reserve(static_cast<size_t>(cap));
  }

  // Gustavson: per output row, scatter-accumulate into a dense accumulator
  // with an occupancy list, then gather in sorted column order. Scratch
  // comes from the pooled arena (clean-buffer invariant: the gather re-zeroes
  // exactly the touched entries).
  ScratchPool::Lease lease = ScratchPool::Global().Acquire();
  lease->EnsureScatterCols(l);
  double* acc = lease->scatter_acc();
  char* seen = lease->scatter_seen();
  std::vector<int64_t>& occupied = lease->scatter_list();

  for (int64_t i = 0; i < m; ++i) {
    const auto a_idx = a.RowIndices(i);
    const auto a_val = a.RowValues(i);
    for (size_t ka = 0; ka < a_idx.size(); ++ka) {
      const int64_t k = a_idx[ka];
      const auto b_idx = b.RowIndices(k);
      const auto b_val = b.RowValues(k);
      kernels::SpGemmScatterRow(b_idx.data(), b_val.data(),
                                static_cast<int64_t>(b_idx.size()), a_val[ka],
                                acc, seen, occupied);
    }
    const size_t base = col_idx.size();
    col_idx.resize(base + occupied.size());
    values.resize(base + occupied.size());
    const int64_t written = kernels::SpGemmGatherRow(
        occupied, acc, seen, col_idx.data() + base, values.data() + base);
    col_idx.resize(base + static_cast<size_t>(written));
    values.resize(base + static_cast<size_t>(written));
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m, l, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

namespace {

// Symbolic pass shared by the parallel SpGEMM and the parallel exact nnz:
// fills row_nnz[i] with the number of non-zero columns reachable in output
// row i (pattern only — no values, so explicit numeric cancellation is not
// detected here; the fill pass below compacts cancelled entries the same way
// the sequential kernel does, by value). For pattern counting the two passes
// agree because ProductNnzExact is also pattern-based.
void SymbolicRowCounts(const CsrMatrix& a, const CsrMatrix& b,
                       const ParallelConfig& config, ThreadPool* pool,
                       std::vector<int64_t>& row_nnz) {
  const int64_t m = a.rows();
  const int64_t l = b.cols();
  row_nnz.assign(static_cast<size_t>(m), 0);
  ParallelForBlocks(pool, config, m,
                    [&](int64_t /*block*/, int64_t lo, int64_t hi) {
    // Per-worker scratch from the pooled arena — no per-block O(cols)
    // allocation/zeroing.
    ScratchPool::Lease lease = ScratchPool::Global().Acquire();
    lease->EnsureScatterCols(l);
    char* seen = lease->scatter_seen();
    std::vector<int64_t>& occupied = lease->scatter_list();
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t k : a.RowIndices(i)) {
        const auto b_idx = b.RowIndices(k);
        kernels::SpGemmSymbolicRow(b_idx.data(),
                                   static_cast<int64_t>(b_idx.size()), seen,
                                   occupied);
      }
      row_nnz[static_cast<size_t>(i)] =
          kernels::SpGemmResetSymbolicRow(occupied, seen);
    }
  });
}

}  // namespace

CsrMatrix MultiplySparseSparse(const CsrMatrix& a, const CsrMatrix& b,
                               const ParallelConfig& config, ThreadPool* pool) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  if (!config.enabled() || pool == nullptr) {
    return MultiplySparseSparse(a, b);
  }
  const int64_t m = a.rows();
  const int64_t l = b.cols();

  // Pass 1 (symbolic): per-row pattern counts, in parallel.
  std::vector<int64_t> pattern_nnz;
  SymbolicRowCounts(a, b, config, pool, pattern_nnz);

  // Exclusive scan: row i's entries may occupy [scan[i], scan[i+1]). The
  // pattern count is an upper bound on the numeric count (values that cancel
  // to exactly 0.0 are dropped by the fill pass, as in the sequential
  // kernel), so rows are filled into provisional slices and compacted after.
  std::vector<int64_t> scan(static_cast<size_t>(m) + 1, 0);
  for (int64_t i = 0; i < m; ++i) {
    scan[static_cast<size_t>(i) + 1] =
        scan[static_cast<size_t>(i)] + pattern_nnz[static_cast<size_t>(i)];
  }
  const int64_t pattern_total = scan[static_cast<size_t>(m)];

  std::vector<int64_t> col_idx(static_cast<size_t>(pattern_total));
  std::vector<double> values(static_cast<size_t>(pattern_total));
  std::vector<int64_t> row_nnz(static_cast<size_t>(m), 0);

  // Pass 2 (fill): each block scatters into a thread-local accumulator and
  // gathers sorted entries into its rows' disjoint slices — identical
  // per-row arithmetic to the sequential kernel.
  ParallelForBlocks(pool, config, m,
                    [&](int64_t /*block*/, int64_t lo, int64_t hi) {
    // Per-worker scratch from the pooled arena instead of fresh O(cols)
    // acc/seen vectors per block.
    ScratchPool::Lease lease = ScratchPool::Global().Acquire();
    lease->EnsureScatterCols(l);
    double* acc = lease->scatter_acc();
    char* seen = lease->scatter_seen();
    std::vector<int64_t>& occupied = lease->scatter_list();
    for (int64_t i = lo; i < hi; ++i) {
      const auto a_idx = a.RowIndices(i);
      const auto a_val = a.RowValues(i);
      for (size_t ka = 0; ka < a_idx.size(); ++ka) {
        const int64_t k = a_idx[ka];
        const auto b_idx = b.RowIndices(k);
        const auto b_val = b.RowValues(k);
        kernels::SpGemmScatterRow(b_idx.data(), b_val.data(),
                                  static_cast<int64_t>(b_idx.size()),
                                  a_val[ka], acc, seen, occupied);
      }
      const int64_t base = scan[static_cast<size_t>(i)];
      row_nnz[static_cast<size_t>(i)] = kernels::SpGemmGatherRow(
          occupied, acc, seen, col_idx.data() + base, values.data() + base);
    }
  });

  // Compact the provisional slices into final CSR (cheap sequential copy;
  // no-op-sized when nothing cancelled).
  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  for (int64_t i = 0; i < m; ++i) {
    row_ptr[static_cast<size_t>(i) + 1] =
        row_ptr[static_cast<size_t>(i)] + row_nnz[static_cast<size_t>(i)];
  }
  const int64_t total = row_ptr[static_cast<size_t>(m)];
  if (total != pattern_total) {
    std::vector<int64_t> packed_idx(static_cast<size_t>(total));
    std::vector<double> packed_val(static_cast<size_t>(total));
    for (int64_t i = 0; i < m; ++i) {
      const int64_t src = scan[static_cast<size_t>(i)];
      const int64_t dst = row_ptr[static_cast<size_t>(i)];
      const int64_t cnt = row_nnz[static_cast<size_t>(i)];
      std::copy_n(col_idx.begin() + src, cnt, packed_idx.begin() + dst);
      std::copy_n(values.begin() + src, cnt, packed_val.begin() + dst);
    }
    col_idx = std::move(packed_idx);
    values = std::move(packed_val);
  }
  return CsrMatrix(m, l, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

DenseMatrix MultiplyDenseDense(const DenseMatrix& a, const DenseMatrix& b,
                               ThreadPool* pool) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t l = b.cols();
  DenseMatrix c(m, l);

  auto compute_rows = [&](int64_t begin, int64_t end) {
    // i-k-j loop order: streams over B rows, vectorizes the inner j loop.
    for (int64_t i = begin; i < end; ++i) {
      double* ci = c.row(i);
      const double* ai = a.row(i);
      for (int64_t k = 0; k < n; ++k) {
        const double av = ai[k];
        if (av == 0.0) continue;
        const double* bk = b.row(k);
        for (int64_t j = 0; j < l; ++j) {
          ci[j] += av * bk[j];
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(m, compute_rows);
  } else {
    compute_rows(0, m);
  }
  return c;
}

DenseMatrix MultiplySparseDense(const CsrMatrix& a, const DenseMatrix& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t l = b.cols();
  DenseMatrix c(m, l);
  for (int64_t i = 0; i < m; ++i) {
    double* ci = c.row(i);
    const auto a_idx = a.RowIndices(i);
    const auto a_val = a.RowValues(i);
    for (size_t ka = 0; ka < a_idx.size(); ++ka) {
      const double av = a_val[ka];
      const double* bk = b.row(a_idx[ka]);
      for (int64_t j = 0; j < l; ++j) {
        ci[j] += av * bk[j];
      }
    }
  }
  return c;
}

DenseMatrix MultiplyDenseSparse(const DenseMatrix& a, const CsrMatrix& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t l = b.cols();
  DenseMatrix c(m, l);
  for (int64_t i = 0; i < m; ++i) {
    double* ci = c.row(i);
    const double* ai = a.row(i);
    for (int64_t k = 0; k < n; ++k) {
      const double av = ai[k];
      if (av == 0.0) continue;
      const auto b_idx = b.RowIndices(k);
      const auto b_val = b.RowValues(k);
      for (size_t kb = 0; kb < b_idx.size(); ++kb) {
        ci[b_idx[kb]] += av * b_val[kb];
      }
    }
  }
  return c;
}

Matrix Multiply(const Matrix& a, const Matrix& b, ThreadPool* pool) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  if (a.is_dense() && b.is_dense()) {
    return Matrix::AutoFromDense(MultiplyDenseDense(a.dense(), b.dense(), pool));
  }
  if (!a.is_dense() && !b.is_dense()) {
    if (pool != nullptr && pool->num_threads() > 1) {
      // The parallel kernel is bit-identical to the sequential one, so the
      // dispatch may use it whenever a pool is offered.
      ParallelConfig config;
      config.num_threads = pool->num_threads();
      return Matrix::AutoFromCsr(
          MultiplySparseSparse(a.csr(), b.csr(), config, pool));
    }
    return Matrix::AutoFromCsr(MultiplySparseSparse(a.csr(), b.csr()));
  }
  if (!a.is_dense()) {
    return Matrix::AutoFromDense(MultiplySparseDense(a.csr(), b.dense()));
  }
  return Matrix::AutoFromDense(MultiplyDenseSparse(a.dense(), b.csr()));
}

int64_t ProductNnzExact(const CsrMatrix& a, const CsrMatrix& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t l = b.cols();
  int64_t nnz = 0;
  ScratchPool::Lease lease = ScratchPool::Global().Acquire();
  lease->EnsureScatterCols(l);
  char* seen = lease->scatter_seen();
  std::vector<int64_t>& occupied = lease->scatter_list();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t k : a.RowIndices(i)) {
      const auto b_idx = b.RowIndices(k);
      kernels::SpGemmSymbolicRow(b_idx.data(),
                                 static_cast<int64_t>(b_idx.size()), seen,
                                 occupied);
    }
    nnz += kernels::SpGemmResetSymbolicRow(occupied, seen);
  }
  return nnz;
}

int64_t ProductNnzExact(const CsrMatrix& a, const CsrMatrix& b,
                        const ParallelConfig& config, ThreadPool* pool) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  if (!config.enabled() || pool == nullptr) return ProductNnzExact(a, b);
  std::vector<int64_t> row_nnz;
  SymbolicRowCounts(a, b, config, pool, row_nnz);
  int64_t nnz = 0;
  for (int64_t c : row_nnz) nnz += c;
  return nnz;
}

}  // namespace mnc
