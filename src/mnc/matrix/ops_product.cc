#include "mnc/matrix/ops_product.h"

#include <algorithm>
#include <vector>

namespace mnc {

CsrMatrix MultiplySparseSparse(const CsrMatrix& a, const CsrMatrix& b,
                               int64_t expected_nnz) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t l = b.cols();

  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  if (expected_nnz > 0) {
    const int64_t cap = std::min(expected_nnz, m * l);
    col_idx.reserve(static_cast<size_t>(cap));
    values.reserve(static_cast<size_t>(cap));
  }

  // Gustavson: per output row, scatter-accumulate into a dense accumulator
  // with an occupancy list, then gather in sorted column order.
  std::vector<double> acc(static_cast<size_t>(l), 0.0);
  std::vector<int64_t> occupied;
  std::vector<char> seen(static_cast<size_t>(l), 0);

  for (int64_t i = 0; i < m; ++i) {
    occupied.clear();
    const auto a_idx = a.RowIndices(i);
    const auto a_val = a.RowValues(i);
    for (size_t ka = 0; ka < a_idx.size(); ++ka) {
      const int64_t k = a_idx[ka];
      const double av = a_val[ka];
      const auto b_idx = b.RowIndices(k);
      const auto b_val = b.RowValues(k);
      for (size_t kb = 0; kb < b_idx.size(); ++kb) {
        const int64_t j = b_idx[kb];
        if (!seen[static_cast<size_t>(j)]) {
          seen[static_cast<size_t>(j)] = 1;
          occupied.push_back(j);
        }
        acc[static_cast<size_t>(j)] += av * b_val[kb];
      }
    }
    std::sort(occupied.begin(), occupied.end());
    for (int64_t j : occupied) {
      const double v = acc[static_cast<size_t>(j)];
      if (v != 0.0) {
        col_idx.push_back(j);
        values.push_back(v);
      }
      acc[static_cast<size_t>(j)] = 0.0;
      seen[static_cast<size_t>(j)] = 0;
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m, l, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

DenseMatrix MultiplyDenseDense(const DenseMatrix& a, const DenseMatrix& b,
                               ThreadPool* pool) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t l = b.cols();
  DenseMatrix c(m, l);

  auto compute_rows = [&](int64_t begin, int64_t end) {
    // i-k-j loop order: streams over B rows, vectorizes the inner j loop.
    for (int64_t i = begin; i < end; ++i) {
      double* ci = c.row(i);
      const double* ai = a.row(i);
      for (int64_t k = 0; k < n; ++k) {
        const double av = ai[k];
        if (av == 0.0) continue;
        const double* bk = b.row(k);
        for (int64_t j = 0; j < l; ++j) {
          ci[j] += av * bk[j];
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(m, compute_rows);
  } else {
    compute_rows(0, m);
  }
  return c;
}

DenseMatrix MultiplySparseDense(const CsrMatrix& a, const DenseMatrix& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t l = b.cols();
  DenseMatrix c(m, l);
  for (int64_t i = 0; i < m; ++i) {
    double* ci = c.row(i);
    const auto a_idx = a.RowIndices(i);
    const auto a_val = a.RowValues(i);
    for (size_t ka = 0; ka < a_idx.size(); ++ka) {
      const double av = a_val[ka];
      const double* bk = b.row(a_idx[ka]);
      for (int64_t j = 0; j < l; ++j) {
        ci[j] += av * bk[j];
      }
    }
  }
  return c;
}

DenseMatrix MultiplyDenseSparse(const DenseMatrix& a, const CsrMatrix& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t l = b.cols();
  DenseMatrix c(m, l);
  for (int64_t i = 0; i < m; ++i) {
    double* ci = c.row(i);
    const double* ai = a.row(i);
    for (int64_t k = 0; k < n; ++k) {
      const double av = ai[k];
      if (av == 0.0) continue;
      const auto b_idx = b.RowIndices(k);
      const auto b_val = b.RowValues(k);
      for (size_t kb = 0; kb < b_idx.size(); ++kb) {
        ci[b_idx[kb]] += av * b_val[kb];
      }
    }
  }
  return c;
}

Matrix Multiply(const Matrix& a, const Matrix& b, ThreadPool* pool) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  if (a.is_dense() && b.is_dense()) {
    return Matrix::AutoFromDense(MultiplyDenseDense(a.dense(), b.dense(), pool));
  }
  if (!a.is_dense() && !b.is_dense()) {
    return Matrix::AutoFromCsr(MultiplySparseSparse(a.csr(), b.csr()));
  }
  if (!a.is_dense()) {
    return Matrix::AutoFromDense(MultiplySparseDense(a.csr(), b.dense()));
  }
  return Matrix::AutoFromDense(MultiplyDenseSparse(a.dense(), b.csr()));
}

int64_t ProductNnzExact(const CsrMatrix& a, const CsrMatrix& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t l = b.cols();
  int64_t nnz = 0;
  std::vector<char> seen(static_cast<size_t>(l), 0);
  std::vector<int64_t> occupied;
  for (int64_t i = 0; i < m; ++i) {
    occupied.clear();
    for (int64_t k : a.RowIndices(i)) {
      for (int64_t j : b.RowIndices(k)) {
        if (!seen[static_cast<size_t>(j)]) {
          seen[static_cast<size_t>(j)] = 1;
          occupied.push_back(j);
        }
      }
    }
    nnz += static_cast<int64_t>(occupied.size());
    for (int64_t j : occupied) seen[static_cast<size_t>(j)] = 0;
  }
  return nnz;
}

}  // namespace mnc
