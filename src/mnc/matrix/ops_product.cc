#include "mnc/matrix/ops_product.h"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "mnc/kernels/kernels.h"
#include "mnc/util/arena.h"

namespace mnc {

CsrMatrix MultiplySparseSparse(const CsrMatrix& a, const CsrMatrix& b,
                               int64_t expected_nnz) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t l = b.cols();

  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  if (expected_nnz > 0) {
    const int64_t cap = std::min(expected_nnz, m * l);
    col_idx.reserve(static_cast<size_t>(cap));
    values.reserve(static_cast<size_t>(cap));
  }

  // Gustavson: per output row, scatter-accumulate into a dense accumulator
  // with an occupancy list, then gather in sorted column order. Scratch
  // comes from the pooled arena (clean-buffer invariant: the gather re-zeroes
  // exactly the touched entries).
  ScratchPool::Lease lease = ScratchPool::Global().Acquire();
  lease->EnsureScatterCols(l);
  double* acc = lease->scatter_acc();
  char* seen = lease->scatter_seen();
  std::vector<int64_t>& occupied = lease->scatter_list();

  for (int64_t i = 0; i < m; ++i) {
    const auto a_idx = a.RowIndices(i);
    const auto a_val = a.RowValues(i);
    for (size_t ka = 0; ka < a_idx.size(); ++ka) {
      const int64_t k = a_idx[ka];
      const auto b_idx = b.RowIndices(k);
      const auto b_val = b.RowValues(k);
      kernels::SpGemmScatterRow(b_idx.data(), b_val.data(),
                                static_cast<int64_t>(b_idx.size()), a_val[ka],
                                acc, seen, occupied);
    }
    const size_t base = col_idx.size();
    col_idx.resize(base + occupied.size());
    values.resize(base + occupied.size());
    const int64_t written = kernels::SpGemmGatherRow(
        occupied, acc, seen, col_idx.data() + base, values.data() + base);
    col_idx.resize(base + static_cast<size_t>(written));
    values.resize(base + static_cast<size_t>(written));
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m, l, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

namespace {

// Symbolic pass shared by the parallel SpGEMM and the parallel exact nnz:
// fills row_nnz[i] with the number of non-zero columns reachable in output
// row i (pattern only — no values, so explicit numeric cancellation is not
// detected here; the fill pass below compacts cancelled entries the same way
// the sequential kernel does, by value). For pattern counting the two passes
// agree because ProductNnzExact is also pattern-based.
void SymbolicRowCounts(const CsrMatrix& a, const CsrMatrix& b,
                       const ParallelConfig& config, ThreadPool* pool,
                       std::vector<int64_t>& row_nnz) {
  const int64_t m = a.rows();
  const int64_t l = b.cols();
  row_nnz.assign(static_cast<size_t>(m), 0);
  ParallelForBlocks(pool, config, m,
                    [&](int64_t /*block*/, int64_t lo, int64_t hi) {
    // Per-worker scratch from the pooled arena — no per-block O(cols)
    // allocation/zeroing.
    ScratchPool::Lease lease = ScratchPool::Global().Acquire();
    lease->EnsureScatterCols(l);
    char* seen = lease->scatter_seen();
    std::vector<int64_t>& occupied = lease->scatter_list();
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t k : a.RowIndices(i)) {
        const auto b_idx = b.RowIndices(k);
        kernels::SpGemmSymbolicRow(b_idx.data(),
                                   static_cast<int64_t>(b_idx.size()), seen,
                                   occupied);
      }
      row_nnz[static_cast<size_t>(i)] =
          kernels::SpGemmResetSymbolicRow(occupied, seen);
    }
  });
}

}  // namespace

CsrMatrix MultiplySparseSparse(const CsrMatrix& a, const CsrMatrix& b,
                               const ParallelConfig& orig, ThreadPool* pool) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  // Calibrated dispatch: drop to the sequential kernel below the measured
  // crossover (bit-identical; each row's output is computed independently,
  // so a calibrated grain is also safe).
  const ParallelConfig config =
      orig.ForStage(TunedStage::kSpGemm, a.rows() + a.NumNonZeros());
  if (!config.enabled() || pool == nullptr) {
    return MultiplySparseSparse(a, b);
  }
  const int64_t m = a.rows();
  const int64_t l = b.cols();

  // Pass 1 (symbolic): per-row pattern counts, in parallel.
  std::vector<int64_t> pattern_nnz;
  SymbolicRowCounts(a, b, config, pool, pattern_nnz);

  // Exclusive scan: row i's entries may occupy [scan[i], scan[i+1]). The
  // pattern count is an upper bound on the numeric count (values that cancel
  // to exactly 0.0 are dropped by the fill pass, as in the sequential
  // kernel), so rows are filled into provisional slices and compacted after.
  std::vector<int64_t> scan(static_cast<size_t>(m) + 1, 0);
  for (int64_t i = 0; i < m; ++i) {
    scan[static_cast<size_t>(i) + 1] =
        scan[static_cast<size_t>(i)] + pattern_nnz[static_cast<size_t>(i)];
  }
  const int64_t pattern_total = scan[static_cast<size_t>(m)];

  std::vector<int64_t> col_idx(static_cast<size_t>(pattern_total));
  std::vector<double> values(static_cast<size_t>(pattern_total));
  std::vector<int64_t> row_nnz(static_cast<size_t>(m), 0);

  // Pass 2 (fill): each block scatters into a thread-local accumulator and
  // gathers sorted entries into its rows' disjoint slices — identical
  // per-row arithmetic to the sequential kernel.
  ParallelForBlocks(pool, config, m,
                    [&](int64_t /*block*/, int64_t lo, int64_t hi) {
    // Per-worker scratch from the pooled arena instead of fresh O(cols)
    // acc/seen vectors per block.
    ScratchPool::Lease lease = ScratchPool::Global().Acquire();
    lease->EnsureScatterCols(l);
    double* acc = lease->scatter_acc();
    char* seen = lease->scatter_seen();
    std::vector<int64_t>& occupied = lease->scatter_list();
    for (int64_t i = lo; i < hi; ++i) {
      const auto a_idx = a.RowIndices(i);
      const auto a_val = a.RowValues(i);
      for (size_t ka = 0; ka < a_idx.size(); ++ka) {
        const int64_t k = a_idx[ka];
        const auto b_idx = b.RowIndices(k);
        const auto b_val = b.RowValues(k);
        kernels::SpGemmScatterRow(b_idx.data(), b_val.data(),
                                  static_cast<int64_t>(b_idx.size()),
                                  a_val[ka], acc, seen, occupied);
      }
      const int64_t base = scan[static_cast<size_t>(i)];
      row_nnz[static_cast<size_t>(i)] = kernels::SpGemmGatherRow(
          occupied, acc, seen, col_idx.data() + base, values.data() + base);
    }
  });

  // Compact the provisional slices into final CSR (cheap sequential copy;
  // no-op-sized when nothing cancelled).
  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  for (int64_t i = 0; i < m; ++i) {
    row_ptr[static_cast<size_t>(i) + 1] =
        row_ptr[static_cast<size_t>(i)] + row_nnz[static_cast<size_t>(i)];
  }
  const int64_t total = row_ptr[static_cast<size_t>(m)];
  if (total != pattern_total) {
    std::vector<int64_t> packed_idx(static_cast<size_t>(total));
    std::vector<double> packed_val(static_cast<size_t>(total));
    for (int64_t i = 0; i < m; ++i) {
      const int64_t src = scan[static_cast<size_t>(i)];
      const int64_t dst = row_ptr[static_cast<size_t>(i)];
      const int64_t cnt = row_nnz[static_cast<size_t>(i)];
      std::copy_n(col_idx.begin() + src, cnt, packed_idx.begin() + dst);
      std::copy_n(values.begin() + src, cnt, packed_val.begin() + dst);
    }
    col_idx = std::move(packed_idx);
    values = std::move(packed_val);
  }
  return CsrMatrix(m, l, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

DenseMatrix MultiplyDenseDense(const DenseMatrix& a, const DenseMatrix& b,
                               ThreadPool* pool) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t l = b.cols();
  DenseMatrix c(m, l);

  auto compute_rows = [&](int64_t begin, int64_t end) {
    // i-k-j loop order: streams over B rows, vectorizes the inner j loop.
    for (int64_t i = begin; i < end; ++i) {
      double* ci = c.row(i);
      const double* ai = a.row(i);
      for (int64_t k = 0; k < n; ++k) {
        const double av = ai[k];
        if (av == 0.0) continue;
        const double* bk = b.row(k);
        for (int64_t j = 0; j < l; ++j) {
          ci[j] += av * bk[j];
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(m, compute_rows);
  } else {
    compute_rows(0, m);
  }
  return c;
}

DenseMatrix MultiplySparseDense(const CsrMatrix& a, const DenseMatrix& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t l = b.cols();
  DenseMatrix c(m, l);
  for (int64_t i = 0; i < m; ++i) {
    double* ci = c.row(i);
    const auto a_idx = a.RowIndices(i);
    const auto a_val = a.RowValues(i);
    for (size_t ka = 0; ka < a_idx.size(); ++ka) {
      const double av = a_val[ka];
      const double* bk = b.row(a_idx[ka]);
      for (int64_t j = 0; j < l; ++j) {
        ci[j] += av * bk[j];
      }
    }
  }
  return c;
}

DenseMatrix MultiplyDenseSparse(const DenseMatrix& a, const CsrMatrix& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t l = b.cols();
  DenseMatrix c(m, l);
  for (int64_t i = 0; i < m; ++i) {
    double* ci = c.row(i);
    const double* ai = a.row(i);
    for (int64_t k = 0; k < n; ++k) {
      const double av = ai[k];
      if (av == 0.0) continue;
      const auto b_idx = b.RowIndices(k);
      const auto b_val = b.RowValues(k);
      for (size_t kb = 0; kb < b_idx.size(); ++kb) {
        ci[b_idx[kb]] += av * b_val[kb];
      }
    }
  }
  return c;
}

void GuidedExecStats::MergeFrom(const GuidedExecStats& other) {
  guided_products += other.guided_products;
  single_pass += other.single_pass;
  two_pass_fallbacks += other.two_pass_fallbacks;
  overflow_fallbacks += other.overflow_fallbacks;
  dense_direct += other.dense_direct;
  merge_rows += other.merge_rows;
  scatter_rows += other.scatter_rows;
  guided_reserve_bytes += other.guided_reserve_bytes;
  blind_reserve_bytes += other.blind_reserve_bytes;
}

int64_t BlindReserveBytesModel(int64_t nnz) {
  if (nnz <= 0) return 0;
  int64_t cap = 1;
  while (cap < nnz) cap <<= 1;
  return 16 * cap;  // 8B value + 8B column index per entry
}

namespace {

// Sorted small-row merge accumulator: materializes every (column, product)
// contribution of one output row, stable-sorts by column, and
// run-accumulates into out_idx/out_val. The stable sort preserves the
// ascending-k contribution order within each column, and each run sums the
// same products in the same order into a 0.0-seeded accumulator as the
// scatter kernel does — so the emitted values are bit-identical to
// scatter + gather, including the dropped exactly-cancelled runs. Returns
// the entry count, or -1 when the row needs more than `cap` slots.
int64_t SpGemmMergeRow(const CsrMatrix& a, const CsrMatrix& b, int64_t i,
                       std::vector<std::pair<int64_t, double>>& pairs,
                       int64_t* out_idx, double* out_val, int64_t cap) {
  pairs.clear();
  const auto a_idx = a.RowIndices(i);
  const auto a_val = a.RowValues(i);
  for (size_t ka = 0; ka < a_idx.size(); ++ka) {
    const double av = a_val[ka];
    const auto b_idx = b.RowIndices(a_idx[ka]);
    const auto b_val = b.RowValues(a_idx[ka]);
    for (size_t t = 0; t < b_idx.size(); ++t) {
      pairs.emplace_back(b_idx[t], av * b_val[t]);
    }
  }
  std::stable_sort(
      pairs.begin(), pairs.end(),
      [](const std::pair<int64_t, double>& x,
         const std::pair<int64_t, double>& y) { return x.first < y.first; });
  int64_t written = 0;
  size_t t = 0;
  while (t < pairs.size()) {
    const int64_t col = pairs[t].first;
    double v = 0.0;
    for (; t < pairs.size() && pairs[t].first == col; ++t) v += pairs[t].second;
    if (v != 0.0) {
      if (written == cap) return -1;
      out_idx[written] = col;
      out_val[written] = v;
      ++written;
    }
  }
  return written;
}

// FLOP count (= pattern contributions) of output row i — the exact guard
// for the merge-accumulator choice, O(nnz(A_i)).
int64_t RowFlops(const CsrMatrix& a, const CsrMatrix& b, int64_t i) {
  int64_t flops = 0;
  for (int64_t k : a.RowIndices(i)) flops += b.RowNnz(k);
  return flops;
}

}  // namespace

CsrMatrix MultiplySparseSparseGuided(
    const CsrMatrix& a, const CsrMatrix& b,
    const std::vector<int64_t>& row_upper,
    const std::vector<double>& row_estimate, const GuidedProductOptions& opts,
    const ParallelConfig& orig, ThreadPool* pool, GuidedExecStats* stats) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  // Same calibrated seq-vs-par dispatch as the blind parallel SpGEMM.
  const ParallelConfig config =
      orig.ForStage(TunedStage::kSpGemm, a.rows() + a.NumNonZeros());
  const int64_t m = a.rows();
  const int64_t l = b.cols();
  MNC_CHECK_EQ(static_cast<int64_t>(row_upper.size()), m);
  GuidedExecStats local;
  local.guided_products = 1;

  // Merge-accumulator choice: triggered by the *estimated* row population
  // (the bound when no estimate is supplied), guarded by the exact FLOP
  // count so a badly colliding row cannot make the merge sort expensive.
  const int64_t merge_max = opts.merge_accum_max_nnz;
  auto use_merge = [&](int64_t i, int64_t flops) {
    const double est = row_estimate.empty()
                           ? static_cast<double>(row_upper[static_cast<size_t>(i)])
                           : row_estimate[static_cast<size_t>(i)];
    return est <= static_cast<double>(merge_max) && flops <= 8 * merge_max;
  };
  std::atomic<int64_t> merge_rows{0};
  std::atomic<int64_t> scatter_rows{0};

  const bool parallel = config.enabled() && pool != nullptr;
  if (!parallel) {
    // Sequential: the bounds become the pre-allocation hint (capped by the
    // estimate total when available — bounds can grossly over-reserve on
    // hub-heavy inputs) and rows append with per-row accumulator dispatch.
    int64_t ub_total = 0;
    for (int64_t ub : row_upper) ub_total += ub;
    int64_t hint = ub_total;
    if (!row_estimate.empty()) {
      double est_total = 0.0;
      for (double e : row_estimate) est_total += e;
      hint = std::min(hint, static_cast<int64_t>(est_total) + 1);
    }
    hint = std::min(hint, m * l);

    std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
    std::vector<int64_t> col_idx;
    std::vector<double> values;
    col_idx.reserve(static_cast<size_t>(hint));
    values.reserve(static_cast<size_t>(hint));

    ScratchPool::Lease lease = ScratchPool::Global().Acquire();
    lease->EnsureScatterCols(l);
    double* acc = lease->scatter_acc();
    char* seen = lease->scatter_seen();
    std::vector<int64_t>& occupied = lease->scatter_list();
    std::vector<std::pair<int64_t, double>>& pairs = lease->merge_pairs();

    for (int64_t i = 0; i < m; ++i) {
      const int64_t flops = RowFlops(a, b, i);
      const size_t base = col_idx.size();
      int64_t written = 0;
      if (use_merge(i, flops)) {
        merge_rows.fetch_add(1, std::memory_order_relaxed);
        col_idx.resize(base + static_cast<size_t>(flops));
        values.resize(base + static_cast<size_t>(flops));
        written = SpGemmMergeRow(a, b, i, pairs, col_idx.data() + base,
                                 values.data() + base, flops);
      } else {
        scatter_rows.fetch_add(1, std::memory_order_relaxed);
        const auto a_idx = a.RowIndices(i);
        const auto a_val = a.RowValues(i);
        for (size_t ka = 0; ka < a_idx.size(); ++ka) {
          const auto b_idx = b.RowIndices(a_idx[ka]);
          const auto b_val = b.RowValues(a_idx[ka]);
          kernels::SpGemmScatterRow(b_idx.data(), b_val.data(),
                                    static_cast<int64_t>(b_idx.size()),
                                    a_val[ka], acc, seen, occupied);
        }
        col_idx.resize(base + occupied.size());
        values.resize(base + occupied.size());
        written = kernels::SpGemmGatherRow(occupied, acc, seen,
                                           col_idx.data() + base,
                                           values.data() + base);
      }
      col_idx.resize(base + static_cast<size_t>(written));
      values.resize(base + static_cast<size_t>(written));
      row_ptr[static_cast<size_t>(i) + 1] =
          static_cast<int64_t>(col_idx.size());
    }
    local.single_pass = 1;
    local.merge_rows = merge_rows.load(std::memory_order_relaxed);
    local.scatter_rows = scatter_rows.load(std::memory_order_relaxed);
    local.guided_reserve_bytes = 16 * hint;
    local.blind_reserve_bytes =
        BlindReserveBytesModel(static_cast<int64_t>(col_idx.size()));
    if (stats != nullptr) stats->MergeFrom(local);
    return CsrMatrix(m, l, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
  }

  // Parallel: single-pass fill into bound-sized slices — the symbolic pass
  // of the two-pass kernel is exactly what the sketch bounds replace.
  std::vector<int64_t> scan(static_cast<size_t>(m) + 1, 0);
  for (int64_t i = 0; i < m; ++i) {
    scan[static_cast<size_t>(i) + 1] =
        scan[static_cast<size_t>(i)] + row_upper[static_cast<size_t>(i)];
  }
  const int64_t slice_total = scan[static_cast<size_t>(m)];
  if (16 * slice_total > opts.single_pass_budget_bytes) {
    CsrMatrix result = MultiplySparseSparse(a, b, config, pool);
    local.two_pass_fallbacks = 1;
    local.guided_reserve_bytes = 16 * result.NumNonZeros();
    local.blind_reserve_bytes = 16 * result.NumNonZeros();
    if (stats != nullptr) stats->MergeFrom(local);
    return result;
  }

  std::vector<int64_t> col_idx(static_cast<size_t>(slice_total));
  std::vector<double> values(static_cast<size_t>(slice_total));
  std::vector<int64_t> row_nnz(static_cast<size_t>(m), 0);
  std::atomic<bool> overflow{false};

  ParallelForBlocks(pool, config, m,
                    [&](int64_t /*block*/, int64_t lo, int64_t hi) {
    ScratchPool::Lease lease = ScratchPool::Global().Acquire();
    lease->EnsureScatterCols(l);
    double* acc = lease->scatter_acc();
    char* seen = lease->scatter_seen();
    std::vector<int64_t>& occupied = lease->scatter_list();
    std::vector<std::pair<int64_t, double>>& pairs = lease->merge_pairs();
    int64_t block_merge = 0;
    int64_t block_scatter = 0;
    for (int64_t i = lo; i < hi; ++i) {
      // The result is discarded on overflow, so later rows may bail early.
      if (overflow.load(std::memory_order_relaxed)) break;
      const int64_t base = scan[static_cast<size_t>(i)];
      const int64_t cap = scan[static_cast<size_t>(i) + 1] - base;
      const int64_t flops = RowFlops(a, b, i);
      if (use_merge(i, flops)) {
        ++block_merge;
        const int64_t written =
            SpGemmMergeRow(a, b, i, pairs, col_idx.data() + base,
                           values.data() + base, cap);
        if (written < 0) {
          overflow.store(true, std::memory_order_relaxed);
          break;
        }
        row_nnz[static_cast<size_t>(i)] = written;
      } else {
        ++block_scatter;
        const auto a_idx = a.RowIndices(i);
        const auto a_val = a.RowValues(i);
        for (size_t ka = 0; ka < a_idx.size(); ++ka) {
          const auto b_idx = b.RowIndices(a_idx[ka]);
          const auto b_val = b.RowValues(a_idx[ka]);
          kernels::SpGemmScatterRow(b_idx.data(), b_val.data(),
                                    static_cast<int64_t>(b_idx.size()),
                                    a_val[ka], acc, seen, occupied);
        }
        if (static_cast<int64_t>(occupied.size()) > cap) {
          // Pattern outgrew the (estimated) bound. Restore the clean-buffer
          // invariant before abandoning the pass.
          for (int64_t j : occupied) {
            acc[static_cast<size_t>(j)] = 0.0;
            seen[static_cast<size_t>(j)] = 0;
          }
          occupied.clear();
          overflow.store(true, std::memory_order_relaxed);
          break;
        }
        row_nnz[static_cast<size_t>(i)] = kernels::SpGemmGatherRow(
            occupied, acc, seen, col_idx.data() + base, values.data() + base);
      }
    }
    merge_rows.fetch_add(block_merge, std::memory_order_relaxed);
    scatter_rows.fetch_add(block_scatter, std::memory_order_relaxed);
  });

  if (overflow.load(std::memory_order_relaxed)) {
    // A bound from a propagated sketch was violated; the two-pass kernel
    // recomputes with exact sizing (bit-identical result).
    CsrMatrix result = MultiplySparseSparse(a, b, config, pool);
    local.overflow_fallbacks = 1;
    local.guided_reserve_bytes =
        16 * slice_total + 16 * result.NumNonZeros();
    local.blind_reserve_bytes = 16 * result.NumNonZeros();
    if (stats != nullptr) stats->MergeFrom(local);
    return result;
  }

  // Compaction, exactly as in the two-pass kernel.
  std::vector<int64_t> row_ptr(static_cast<size_t>(m) + 1, 0);
  for (int64_t i = 0; i < m; ++i) {
    row_ptr[static_cast<size_t>(i) + 1] =
        row_ptr[static_cast<size_t>(i)] + row_nnz[static_cast<size_t>(i)];
  }
  const int64_t total = row_ptr[static_cast<size_t>(m)];
  if (total != slice_total) {
    std::vector<int64_t> packed_idx(static_cast<size_t>(total));
    std::vector<double> packed_val(static_cast<size_t>(total));
    for (int64_t i = 0; i < m; ++i) {
      const int64_t src = scan[static_cast<size_t>(i)];
      const int64_t dst = row_ptr[static_cast<size_t>(i)];
      const int64_t cnt = row_nnz[static_cast<size_t>(i)];
      std::copy_n(col_idx.begin() + src, cnt, packed_idx.begin() + dst);
      std::copy_n(values.begin() + src, cnt, packed_val.begin() + dst);
    }
    col_idx = std::move(packed_idx);
    values = std::move(packed_val);
  }
  local.single_pass = 1;
  local.merge_rows = merge_rows.load(std::memory_order_relaxed);
  local.scatter_rows = scatter_rows.load(std::memory_order_relaxed);
  local.guided_reserve_bytes = 16 * slice_total;
  local.blind_reserve_bytes = BlindReserveBytesModel(total);
  if (stats != nullptr) stats->MergeFrom(local);
  return CsrMatrix(m, l, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

DenseMatrix MultiplySparseSparseDense(const CsrMatrix& a, const CsrMatrix& b,
                                      ThreadPool* pool) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t l = b.cols();
  DenseMatrix c(m, l);
  auto compute_rows = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      double* ci = c.row(i);
      const auto a_idx = a.RowIndices(i);
      const auto a_val = a.RowValues(i);
      for (size_t ka = 0; ka < a_idx.size(); ++ka) {
        const double av = a_val[ka];
        const auto b_idx = b.RowIndices(a_idx[ka]);
        const auto b_val = b.RowValues(a_idx[ka]);
        for (size_t t = 0; t < b_idx.size(); ++t) {
          ci[b_idx[t]] += av * b_val[t];
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(m, compute_rows);
  } else {
    compute_rows(0, m);
  }
  return c;
}

Matrix Multiply(const Matrix& a, const Matrix& b, ThreadPool* pool,
                int64_t expected_nnz) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  if (a.is_dense() && b.is_dense()) {
    return Matrix::AutoFromDense(MultiplyDenseDense(a.dense(), b.dense(), pool));
  }
  if (!a.is_dense() && !b.is_dense()) {
    if (pool != nullptr && pool->num_threads() > 1) {
      // The parallel kernel is bit-identical to the sequential one, so the
      // dispatch may use it whenever a pool is offered. It sizes the output
      // exactly (two passes), so the pre-allocation hint has no use here.
      ParallelConfig config;
      config.num_threads = pool->num_threads();
      return Matrix::AutoFromCsr(
          MultiplySparseSparse(a.csr(), b.csr(), config, pool));
    }
    return Matrix::AutoFromCsr(
        MultiplySparseSparse(a.csr(), b.csr(), expected_nnz));
  }
  if (!a.is_dense()) {
    return Matrix::AutoFromDense(MultiplySparseDense(a.csr(), b.dense()));
  }
  return Matrix::AutoFromDense(MultiplyDenseSparse(a.dense(), b.csr()));
}

int64_t ProductNnzExact(const CsrMatrix& a, const CsrMatrix& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t l = b.cols();
  int64_t nnz = 0;
  ScratchPool::Lease lease = ScratchPool::Global().Acquire();
  lease->EnsureScatterCols(l);
  char* seen = lease->scatter_seen();
  std::vector<int64_t>& occupied = lease->scatter_list();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t k : a.RowIndices(i)) {
      const auto b_idx = b.RowIndices(k);
      kernels::SpGemmSymbolicRow(b_idx.data(),
                                 static_cast<int64_t>(b_idx.size()), seen,
                                 occupied);
    }
    nnz += kernels::SpGemmResetSymbolicRow(occupied, seen);
  }
  return nnz;
}

int64_t ProductNnzExact(const CsrMatrix& a, const CsrMatrix& b,
                        const ParallelConfig& config, ThreadPool* pool) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  if (!config.enabled() || pool == nullptr) return ProductNnzExact(a, b);
  std::vector<int64_t> row_nnz;
  SymbolicRowCounts(a, b, config, pool, row_nnz);
  int64_t nnz = 0;
  for (int64_t c : row_nnz) nnz += c;
  return nnz;
}

}  // namespace mnc
