#include "mnc/matrix/coo_matrix.h"

#include <algorithm>
#include <numeric>

#include "mnc/matrix/csr_matrix.h"
#include "mnc/util/check.h"

namespace mnc {

CooMatrix::CooMatrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  MNC_CHECK_GE(rows, 0);
  MNC_CHECK_GE(cols, 0);
}

void CooMatrix::Add(int64_t i, int64_t j, double v) {
  MNC_CHECK(i >= 0 && i < rows_);
  MNC_CHECK(j >= 0 && j < cols_);
  if (v == 0.0) return;
  rows_idx_.push_back(i);
  cols_idx_.push_back(j);
  values_.push_back(v);
}

void CooMatrix::Reserve(int64_t n) {
  rows_idx_.reserve(static_cast<size_t>(n));
  cols_idx_.reserve(static_cast<size_t>(n));
  values_.reserve(static_cast<size_t>(n));
}

CsrMatrix CooMatrix::ToCsr() const {
  const size_t n = rows_idx_.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (rows_idx_[a] != rows_idx_[b]) return rows_idx_[a] < rows_idx_[b];
    return cols_idx_[a] < cols_idx_[b];
  });

  std::vector<int64_t> row_ptr(static_cast<size_t>(rows_) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(n);
  values.reserve(n);

  size_t k = 0;
  while (k < n) {
    const int64_t r = rows_idx_[order[k]];
    const int64_t c = cols_idx_[order[k]];
    double sum = 0.0;
    while (k < n && rows_idx_[order[k]] == r && cols_idx_[order[k]] == c) {
      sum += values_[order[k]];
      ++k;
    }
    if (sum != 0.0) {
      col_idx.push_back(c);
      values.push_back(sum);
      ++row_ptr[static_cast<size_t>(r) + 1];
    }
  }
  for (size_t r = 0; r < static_cast<size_t>(rows_); ++r) {
    row_ptr[r + 1] += row_ptr[r];
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace mnc
