#include "mnc/matrix/checked_ops.h"

#include <string>

#include "mnc/matrix/ops_ewise.h"
#include "mnc/matrix/ops_product.h"
#include "mnc/matrix/ops_reorg.h"

namespace mnc {

namespace {

std::string ShapeStr(const Matrix& m) {
  return std::to_string(m.rows()) + " x " + std::to_string(m.cols());
}

Status CheckSameShape(const char* op, const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument(std::string(op) +
                                   ": operand shapes disagree (" +
                                   ShapeStr(a) + " vs " + ShapeStr(b) + ")");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Matrix> TryMultiply(const Matrix& a, const Matrix& b,
                             ThreadPool* pool, int64_t expected_nnz) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("MatMul: inner dimensions disagree (" +
                                   ShapeStr(a) + " vs " + ShapeStr(b) + ")");
  }
  return Multiply(a, b, pool, expected_nnz);
}

StatusOr<Matrix> TryAdd(const Matrix& a, const Matrix& b) {
  MNC_RETURN_IF_ERROR(CheckSameShape("EWiseAdd", a, b));
  return Add(a, b);
}

StatusOr<Matrix> TryMultiplyEWise(const Matrix& a, const Matrix& b) {
  MNC_RETURN_IF_ERROR(CheckSameShape("EWiseMult", a, b));
  return MultiplyEWise(a, b);
}

StatusOr<Matrix> TryMinEWise(const Matrix& a, const Matrix& b) {
  MNC_RETURN_IF_ERROR(CheckSameShape("EWiseMin", a, b));
  return MinEWise(a, b);
}

StatusOr<Matrix> TryMaxEWise(const Matrix& a, const Matrix& b) {
  MNC_RETURN_IF_ERROR(CheckSameShape("EWiseMax", a, b));
  return MaxEWise(a, b);
}

StatusOr<Matrix> TryReshape(const Matrix& a, int64_t rows, int64_t cols) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("Reshape: negative target shape " +
                                   std::to_string(rows) + " x " +
                                   std::to_string(cols));
  }
  if (a.rows() * a.cols() != rows * cols) {
    return Status::InvalidArgument(
        "Reshape: cell count changes from " + ShapeStr(a) + " to " +
        std::to_string(rows) + " x " + std::to_string(cols));
  }
  return Reshape(a, rows, cols);
}

StatusOr<Matrix> TryDiag(const Matrix& a) {
  if (a.cols() != 1 && a.rows() != a.cols()) {
    return Status::InvalidArgument(
        "Diag: input must be square or a column vector, got " + ShapeStr(a));
  }
  return Diag(a);
}

StatusOr<Matrix> TryRBind(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    return Status::InvalidArgument("RBind: column counts disagree (" +
                                   ShapeStr(a) + " vs " + ShapeStr(b) + ")");
  }
  return RBind(a, b);
}

StatusOr<Matrix> TryCBind(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("CBind: row counts disagree (" +
                                   ShapeStr(a) + " vs " + ShapeStr(b) + ")");
  }
  return CBind(a, b);
}

StatusOr<Matrix> TryScale(const Matrix& a, double alpha) {
  if (alpha == 0.0) {
    return Status::InvalidArgument(
        "Scale: zero scale would erase the non-zero structure");
  }
  return Scale(a, alpha);
}

}  // namespace mnc
