// Packed-operand store — per-operand analysis precomputed once at
// registration time and reused by every Execute that touches the operand.
//
// The serving workload is "same weight matrices, endless requests": a
// cataloged matrix recurs across Execute calls, so anything derivable from
// the operand alone should be paid once, at RegisterMatrix time, not per
// request. The service already builds the operand's exact MNC sketch there;
// this store derives from it, once per content fingerprint:
//
//   * a physical-format verdict (CSR / CSC / dense) from the sketch's
//     density profile. The verdict is analysis, not substitution: swapping
//     a different storage format into evaluation would change which product
//     kernel runs and therefore the FP accumulation order, breaking the
//     guided==blind bit-identity contract (see DESIGN.md). It steers which
//     extras to pre-pack (a CSC verdict pre-builds the transpose, the
//     column-major access form) and surfaces in diagnostics.
//   * the operand's own per-row estimate table (the Thm 3.2 / Eq. 8 leaf
//     base case: upper == estimate == hr, every row exact). Pairwise
//     product tables depend on both operands and live in the plan cache
//     (mnc/service/plan_cache.h); the leaf table is the per-operand seed.
//   * the exact transposed matrix, pre-packed eagerly for CSC verdicts and
//     lazily on the first Transpose(leaf) evaluation otherwise. Transpose
//     is a pure exact permutation, so substituting the cached copy is
//     bit-identical by construction.
//
// Entries are byte-accounted (packed_operand_bytes in ServiceStats) and
// LRU-evicted under a budget, mirroring the catalog's resident accounting.
// Thread-safe; lookups take a shared lock.

#ifndef MNC_SERVICE_PACKED_OPERAND_H_
#define MNC_SERVICE_PACKED_OPERAND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "mnc/core/mnc_sketch.h"
#include "mnc/core/row_estimates.h"
#include "mnc/matrix/matrix.h"

namespace mnc {

enum class PackedFormat { kCsr, kCsc, kDense };

const char* PackedFormatName(PackedFormat f);

// Format verdict from the sketch's density profile: dense at or above the
// dense-dispatch threshold; CSC when the column fill of non-empty columns
// is markedly heavier than the row fill (column-major access patterns —
// right-factor use, transposes — dominate); CSR otherwise.
PackedFormat ClassifyPackedFormat(const MncSketch& sketch);

struct PackedOperand {
  uint64_t fingerprint = 0;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t nnz = 0;
  double sparsity = 0.0;
  PackedFormat verdict = PackedFormat::kCsr;
  // Leaf-level per-row table (exact by construction).
  RowEstimateTable row_table;

  // Null until packed; written under the store's exclusive lock, read via
  // the shared_ptr snapshot TransposeFor returns.
  std::shared_ptr<const Matrix> transpose;
  int64_t base_bytes = 0;       // entry bytes excluding the transpose
  int64_t transpose_bytes = 0;  // 0 until the transpose is packed
  // LRU clock; atomic so lookups can touch it under the shared lock.
  std::atomic<uint64_t> last_use{0};
};

struct PackedStoreStats {
  int64_t entries = 0;
  int64_t bytes = 0;
  int64_t builds = 0;
  int64_t evictions = 0;
  int64_t transpose_builds = 0;
  int64_t transpose_hits = 0;
};

class PackedOperandStore {
 public:
  // budget_bytes <= 0 disables the store entirely (every call no-ops).
  explicit PackedOperandStore(int64_t budget_bytes) : budget_(budget_bytes) {}

  PackedOperandStore(const PackedOperandStore&) = delete;
  PackedOperandStore& operator=(const PackedOperandStore&) = delete;

  bool enabled() const { return budget_ > 0; }

  // Builds (or refreshes) the packed analysis for `fp` from the operand's
  // matrix and its exact sketch. CSC verdicts pre-pack the transpose.
  void BuildAndInsert(uint64_t fp, const Matrix& m, const MncSketch& sketch);

  std::shared_ptr<const PackedOperand> Lookup(uint64_t fp);

  // The cached exact transpose for `fp`, packing (and byte-accounting) it
  // on first use. Returns nullptr when `fp` is not packed (ad-hoc leaf or
  // evicted entry) — the caller then computes the transpose itself.
  std::shared_ptr<const Matrix> TransposeFor(uint64_t fp, const Matrix& m);

  // Drops the entry for `fp` (catalog invalidation edges). Returns true if
  // an entry was dropped.
  bool Erase(uint64_t fp);

  void Clear();

  int64_t bytes() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return bytes_;
  }

  PackedStoreStats stats() const;

 private:
  // Evicts least-recently-used entries (never `keep`) until under budget.
  // Requires mu_ held exclusively.
  void EnforceBudgetLocked(const PackedOperand* keep);

  const int64_t budget_;
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<PackedOperand>> by_fp_;
  int64_t bytes_ = 0;
  std::atomic<uint64_t> tick_{0};
  std::atomic<int64_t> builds_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> transpose_builds_{0};
  std::atomic<int64_t> transpose_hits_{0};
};

}  // namespace mnc

#endif  // MNC_SERVICE_PACKED_OPERAND_H_
