#include "mnc/service/sketch_cache.h"

#include <cmath>
#include <utility>

namespace mnc {

namespace {
// Charged per entry on top of the sketch: the slot, the pinned expression
// handle, and amortized hash-map node overhead.
constexpr int64_t kEntryOverheadBytes = 128;
}  // namespace

int64_t SketchMemoCache::EntryBytes(const Entry& entry) {
  const int64_t sketch_bytes =
      entry.sketch != nullptr ? entry.sketch->MemoryBytes() : 0;
  return sketch_bytes + kEntryOverheadBytes;
}

bool SketchMemoCache::Sane(double sparsity) {
  return std::isfinite(sparsity) && sparsity >= 0.0 && sparsity <= 1.0;
}

std::optional<SketchMemoCache::Entry> SketchMemoCache::Lookup(
    uint64_t hash, const ExprPtr& canonical,
    const LeafFingerprintFn& leaf_fp) {
  bool poisoned = false;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = map_.find(hash);
    if (it != map_.end()) {
      const Entry& entry = it->second->entry;
      if (!Sane(entry.sparsity)) {
        poisoned = true;  // drop below, under the exclusive lock
      } else if (StructuralEqual(entry.canonical, canonical, leaf_fp)) {
        it->second->last_used.store(
            tick_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return entry;
      }
    }
  }
  if (poisoned) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = map_.find(hash);
    if (it != map_.end() && !Sane(it->second->entry.sparsity)) {
      poisoned_dropped_.fetch_add(1, std::memory_order_relaxed);
      RemoveLocked(it);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void SketchMemoCache::Insert(uint64_t hash, Entry entry) {
  const int64_t bytes = EntryBytes(entry);
  if (bytes > budget_bytes_) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return;  // can never fit; inserting would break the budget invariant
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  if (auto it = map_.find(hash); it != map_.end()) {
    // Replace (hash collision with a different expression, or a racing
    // recomputation of the same one).
    RemoveLocked(it);
  }
  // Make room *before* charging the new entry: stats() reads bytes_used_
  // without taking mu_, so the budget invariant must hold at every atomic
  // step, not just at lock release. Evicting an empty map is impossible to
  // need — bytes <= budget_bytes_ was checked above.
  while (bytes_used_.load(std::memory_order_relaxed) + bytes >
         budget_bytes_) {
    auto victim = map_.end();
    uint64_t oldest = UINT64_MAX;
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      const uint64_t used = it->second->last_used.load(
          std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = it;
      }
    }
    if (victim == map_.end()) break;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    RemoveLocked(victim);
  }
  auto slot = std::make_unique<Slot>();
  slot->entry = std::move(entry);
  slot->bytes = bytes;
  slot->last_used.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  map_.emplace(hash, std::move(slot));
  bytes_used_.fetch_add(bytes, std::memory_order_relaxed);
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

void SketchMemoCache::Erase(uint64_t hash) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (auto it = map_.find(hash); it != map_.end()) RemoveLocked(it);
}

void SketchMemoCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_.clear();
  bytes_used_.store(0, std::memory_order_relaxed);
}

void SketchMemoCache::RemoveLocked(
    std::unordered_map<uint64_t, std::unique_ptr<Slot>>::iterator it) {
  bytes_used_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
  map_.erase(it);
}

SketchMemoStats SketchMemoCache::stats() const {
  SketchMemoStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.poisoned_dropped = poisoned_dropped_.load(std::memory_order_relaxed);
  s.bytes_used = bytes_used_.load(std::memory_order_relaxed);
  s.budget_bytes = budget_bytes_;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    s.entries = static_cast<int64_t>(map_.size());
  }
  return s;
}

}  // namespace mnc
