#include "mnc/service/plan_cache.h"

#include <cmath>
#include <utility>

#include "mnc/util/fail_point.h"

namespace mnc {

namespace {

// Rough per-node DAG footprint: the node itself plus map/pin overhead.
constexpr int64_t kNodeOverheadBytes = 160;

// Unique node count across all roots: the canonical form shares unchanged
// subtrees with the raw DAG, so shared nodes are charged once.
int64_t CountNodes(std::vector<const ExprNode*> stack) {
  int64_t n = 0;
  std::unordered_set<const ExprNode*> seen;
  while (!stack.empty()) {
    const ExprNode* node = stack.back();
    stack.pop_back();
    if (node == nullptr || !seen.insert(node).second) continue;
    ++n;
    if (!node->is_leaf()) {
      stack.push_back(node->left().get());
      if (node->right() != nullptr) stack.push_back(node->right().get());
    }
  }
  return n;
}

}  // namespace

int64_t CachedPlan::ComputeBytes() const {
  int64_t b = static_cast<int64_t>(sizeof(CachedPlan));
  b += static_cast<int64_t>(operand_fps.capacity() * sizeof(uint64_t));
  b += static_cast<int64_t>(intermediates.capacity() *
                            sizeof(PlanNodeSummary));
  for (const auto& [node, entry] : products) {
    b += entry.MemoryBytes() + kNodeOverheadBytes;
  }
  b += CountNodes({root.get(), canonical_root.get()}) * kNodeOverheadBytes;
  return b;
}

std::shared_ptr<CachedPlan> PlanCache::FetchAndTouch(uint64_t key) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return nullptr;
  it->second.last_use.store(
      tick_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  return it->second.plan;
}

void PlanCache::DropInvalidated(uint64_t key,
                                const std::shared_ptr<CachedPlan>& plan) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end() && it->second.plan == plan) {
    EraseLocked(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    uint64_t key, const ExprPtr& root, const LeafFingerprintFn& leaf_fp,
    const void* profile_token, const CanonicalFn& canonical) {
  if (!enabled()) return nullptr;
  if (std::shared_ptr<CachedPlan> plan = FetchAndTouch(key);
      plan != nullptr) {
    // Invalidation edges checked at use: a profile change or a poisoned
    // entry drops the plan rather than replaying stale decisions.
    if (plan->profile_token != profile_token || std::isnan(plan->sanity)) {
      DropInvalidated(key, plan);
    } else if (StructuralEqual(root, plan->root, leaf_fp)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return plan;
    }
    // Hash-collision guard: a different structure under the same key is a
    // genuine miss, not an invalidation (the resident plan stays) — but the
    // canonical index below still gets its chance.
  }
  // Second chance: an equivalent parenthesization may have recorded a plan
  // under a different raw key but the same canonical form.
  if (canonical != nullptr) {
    const auto [ckey, croot] = canonical();
    if (croot != nullptr) {
      uint64_t alias = 0;
      bool indexed = false;
      {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto idx = canonical_index_.find(ckey);
        if (idx != canonical_index_.end()) {
          alias = idx->second;
          indexed = true;
        }
      }
      if (indexed && alias != key) {
        if (std::shared_ptr<CachedPlan> plan = FetchAndTouch(alias);
            plan != nullptr) {
          if (plan->profile_token != profile_token ||
              std::isnan(plan->sanity)) {
            DropInvalidated(alias, plan);
          } else if (plan->canonical_root != nullptr &&
                     StructuralEqual(croot, plan->canonical_root, leaf_fp)) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            canonical_hits_.fetch_add(1, std::memory_order_relaxed);
            return plan;
          }
        }
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void PlanCache::Insert(std::shared_ptr<CachedPlan> plan) {
  if (!enabled() || plan == nullptr || plan->root == nullptr) return;
  if (MncFailPointArmed("service.plan_poison")) {
    plan->sanity = std::nan("");
  }
  plan->bytes = plan->ComputeBytes();
  const uint64_t key = plan->key;
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (auto it = by_key_.find(key); it != by_key_.end()) EraseLocked(it);
  Slot& slot = by_key_[key];  // Slot holds an atomic: construct in place
  slot.plan = std::move(plan);
  slot.last_use.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  bytes_ += slot.plan->bytes;
  for (uint64_t fp : slot.plan->operand_fps) fp_index_[fp].insert(key);
  // Latest insertion wins the canonical slot: all spellings are equivalent,
  // so any representative serves the second chance.
  if (slot.plan->canonical_root != nullptr) {
    canonical_index_[slot.plan->canonical_key] = key;
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  EnforceBudgetLocked(key);
}

int64_t PlanCache::InvalidateFingerprint(uint64_t fp) {
  if (!enabled()) return 0;
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto idx = fp_index_.find(fp);
  if (idx == fp_index_.end()) return 0;
  // EraseLocked edits fp_index_; detach this fingerprint's key set first.
  const std::unordered_set<uint64_t> keys = std::move(idx->second);
  fp_index_.erase(idx);
  int64_t dropped = 0;
  for (uint64_t key : keys) {
    auto it = by_key_.find(key);
    if (it == by_key_.end()) continue;
    EraseLocked(it);
    ++dropped;
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

int64_t PlanCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const int64_t dropped = static_cast<int64_t>(by_key_.size());
  by_key_.clear();
  fp_index_.clear();
  canonical_index_.clear();
  bytes_ = 0;
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    s.entries = static_cast<int64_t>(by_key_.size());
    s.bytes = bytes_;
  }
  s.hits = hits_.load(std::memory_order_relaxed);
  s.canonical_hits = canonical_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

void PlanCache::EraseLocked(
    std::unordered_map<uint64_t, Slot>::iterator it) {
  bytes_ -= it->second.plan->bytes;
  for (uint64_t fp : it->second.plan->operand_fps) {
    auto idx = fp_index_.find(fp);
    if (idx == fp_index_.end()) continue;
    idx->second.erase(it->first);
    if (idx->second.empty()) fp_index_.erase(idx);
  }
  // The canonical slot may point at a different (newer) spelling; only
  // detach it when it names the plan being erased.
  if (it->second.plan->canonical_root != nullptr) {
    auto idx = canonical_index_.find(it->second.plan->canonical_key);
    if (idx != canonical_index_.end() && idx->second == it->first) {
      canonical_index_.erase(idx);
    }
  }
  by_key_.erase(it);
}

void PlanCache::EnforceBudgetLocked(uint64_t keep_key) {
  while (bytes_ > budget_ && by_key_.size() > 1) {
    auto victim = by_key_.end();
    uint64_t victim_use = 0;
    for (auto it = by_key_.begin(); it != by_key_.end(); ++it) {
      if (it->first == keep_key) continue;
      const uint64_t use = it->second.last_use.load(std::memory_order_relaxed);
      if (victim == by_key_.end() || use < victim_use) {
        victim = it;
        victim_use = use;
      }
    }
    if (victim == by_key_.end()) break;
    EraseLocked(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace mnc
