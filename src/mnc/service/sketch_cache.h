// Memoized propagation cache: canonical sub-expression hash -> propagated
// MNC sketch + sparsity estimate, with LRU eviction under a byte budget.
//
// The estimation service consults this table for every node of every query
// DAG, so the common case (hit) must admit concurrent readers: lookups take
// a shared lock and stamp a per-entry atomic recency tick; inserts and
// evictions take the exclusive lock. Recency under concurrency is therefore
// approximate LRU (ticks race benignly); under serial use it is exact, which
// is what the eviction-order tests pin down.
//
// Byte accounting charges each entry its sketch's measured MemoryBytes()
// plus fixed bookkeeping overhead. The invariant "bytes_used <= budget"
// holds whenever no exclusive operation is in flight: Insert evicts before
// returning, and an entry that alone exceeds the budget is rejected
// outright. A cached estimate that fails the sanity invariant (finite, in
// [0, 1]) is treated as poisoned: the lookup drops it and reports a miss so
// the caller recomputes — the cache degrades, it never serves garbage.

#ifndef MNC_SERVICE_SKETCH_CACHE_H_
#define MNC_SERVICE_SKETCH_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "mnc/core/mnc_sketch.h"
#include "mnc/ir/expr_hash.h"

namespace mnc {

struct SketchMemoStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts = 0;
  int64_t evictions = 0;         // includes over-budget rejections
  int64_t poisoned_dropped = 0;  // entries failing the sanity invariant
  int64_t bytes_used = 0;
  int64_t entries = 0;
  int64_t budget_bytes = 0;
};

class SketchMemoCache {
 public:
  struct Entry {
    // Pinned canonical expression: verifies hash hits structurally and
    // keeps leaf matrices alive for fingerprint comparison.
    ExprPtr canonical;
    std::shared_ptr<const MncSketch> sketch;
    double sparsity = 1.0;
  };

  // budget_bytes <= 0 disables caching entirely (every lookup misses).
  explicit SketchMemoCache(int64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  SketchMemoCache(const SketchMemoCache&) = delete;
  SketchMemoCache& operator=(const SketchMemoCache&) = delete;

  // Returns the entry stored under `hash` if it structurally matches
  // `canonical` and passes the sanity invariant; nullopt otherwise. A
  // poisoned entry is erased as a side effect.
  std::optional<Entry> Lookup(uint64_t hash, const ExprPtr& canonical,
                              const LeafFingerprintFn& leaf_fp = nullptr);

  // Inserts (or replaces) the entry under `hash`, then evicts
  // least-recently-used entries until the byte budget holds. An entry
  // larger than the whole budget is rejected (counted as an eviction).
  void Insert(uint64_t hash, Entry entry);

  void Erase(uint64_t hash);
  void Clear();

  SketchMemoStats stats() const;
  int64_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }
  int64_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Slot {
    Entry entry;
    int64_t bytes = 0;
    std::atomic<uint64_t> last_used{0};
  };

  static int64_t EntryBytes(const Entry& entry);
  static bool Sane(double sparsity);

  // Must hold mu_ exclusively. Removes `it` and updates accounting.
  void RemoveLocked(std::unordered_map<uint64_t, std::unique_ptr<Slot>>::
                        iterator it);

  const int64_t budget_bytes_;
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Slot>> map_;
  std::atomic<uint64_t> tick_{0};
  std::atomic<int64_t> bytes_used_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> poisoned_dropped_{0};
};

}  // namespace mnc

#endif  // MNC_SERVICE_SKETCH_CACHE_H_
