// Plan cache — warm-path Execute for repeat-operand serving.
//
// A cold guided Execute pays, on top of the kernels themselves: leaf sketch
// resolution, sketch propagation for every intermediate, per-row Thm 3.2 /
// Eq. 8 estimation for every product, and the dispatch decisions derived
// from them. For the serving workload ("same weight matrices, endless
// requests") all of that is a pure function of the expression structure and
// the operands' contents — so it is computed once, recorded, and replayed.
//
// Keying. A CachedPlan is keyed by the structural hash of the RAW query
// DAG (ExprHasher over the uncanonicalized root; leaves hash by shape +
// content fingerprint, so the key already covers both the expression
// structure and every operand's content). Deliberately NOT the canonical
// form: CanonicalizeExpr re-associates product chains, which changes the FP
// round-off of evaluation — a plan keyed canonically could answer a query
// with differently-rounded bits than its cold execution. Hash hits are
// verified with StructuralEqual before use.
//
// Canonical second chance. On a raw-key miss the cache consults a second
// index keyed by the hash of the CANONICAL form: equivalent
// parenthesizations from different clients ((A·B)·C vs A·(B·C)) then share
// one recorded plan instead of each paying a cold guided run. A canonical
// hit replays the recorded plan's own pinned DAG, so its bytes are
// bit-identical to the recorded spelling's cold execution — equal to the
// querying spelling's cold bits only up to FP re-association round-off
// (the non-zero structure agrees under assumption A1, exactly the contract
// CanonicalizeExpr already applies to estimates). Canonical hits are
// verified by StructuralEqual over the canonical forms and counted
// separately (canonical_hits) so operators can see the sharing work.
//
// What a plan holds: the pinned query DAG (node identity anchors the
// per-product entries and the leaves pin their matrices), the recorded
// ProductPlanEntry per product node (all guided decisions + per-row
// tables, see mnc/ir/evaluator.h), the operand fingerprints it depends on,
// the propagated intermediate sketch summaries (diagnostics), and the
// calibration-profile token it was recorded under.
//
// Invalidation (airtight by construction — every edge drops plans):
//   - re-registration touching a fingerprint -> InvalidateFingerprint
//   - ClearCatalog / catalog spill eviction  -> InvalidateFingerprint/Clear
//   - calibration profile change             -> token mismatch at Lookup
//   - "service.plan_poison" fail point       -> sanity check at Lookup
// Degraded and deadline-exceeded executions are never inserted (same
// contract as the memo cache); the service only records plans from fully
// successful cold guided runs.
//
// Byte accounting: every plan is charged for its tables, entries, and an
// estimate of its DAG, with LRU eviction under the configured budget.

#ifndef MNC_SERVICE_PLAN_CACHE_H_
#define MNC_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mnc/ir/evaluator.h"
#include "mnc/ir/expr.h"
#include "mnc/ir/expr_hash.h"

namespace mnc {

// Propagated sketch summary of one intermediate node, kept with the plan
// for diagnostics and reserve sizing without re-propagation.
struct PlanNodeSummary {
  int64_t rows = 0;
  int64_t cols = 0;
  double est_sparsity = 0.0;
};

struct CachedPlan {
  uint64_t key = 0;
  // The recorded query DAG, pinned: replay executes THIS root (its leaves
  // pin their matrices and its node pointers key `products`), never the
  // caller's structurally-equal copy.
  ExprPtr root;
  // Canonical form of `root` and its structural hash — the second-chance
  // index entry (0/null disables the second chance for this plan). The
  // canonical DAG shares unchanged subtrees with `root`, so the extra
  // footprint is the re-associated spine only.
  uint64_t canonical_key = 0;
  ExprPtr canonical_root;
  // Content fingerprints of every leaf, sorted unique — the invalidation
  // index entries for this plan.
  std::vector<uint64_t> operand_fps;
  std::unordered_map<const ExprNode*, ProductPlanEntry> products;
  std::vector<PlanNodeSummary> intermediates;
  // Effective calibration profile at record time; a different active
  // profile invalidates the plan (budgets/thresholds may have moved).
  const void* profile_token = nullptr;
  int64_t bytes = 0;
  // NaN when poisoned by the "service.plan_poison" fail point; Lookup
  // drops such entries instead of replaying them.
  double sanity = 0.0;

  int64_t ComputeBytes() const;
};

struct PlanCacheStats {
  int64_t entries = 0;
  int64_t bytes = 0;
  int64_t hits = 0;
  // Second-chance hits via the canonical index (a different spelling of a
  // recorded plan); also counted in `hits`.
  int64_t canonical_hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  // Plans dropped by an invalidation edge (fingerprint, clear, profile
  // change, poison) — NOT by LRU budget eviction, counted separately.
  int64_t invalidations = 0;
  int64_t evictions = 0;
};

class PlanCache {
 public:
  // budget_bytes <= 0 disables the cache (every call no-ops / misses).
  explicit PlanCache(int64_t budget_bytes) : budget_(budget_bytes) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  bool enabled() const { return budget_ > 0; }

  // Lazily computed (canonical hash, canonical root) of the querying DAG,
  // consulted only when the raw key misses.
  using CanonicalFn = std::function<std::pair<uint64_t, ExprPtr>()>;

  // Warm lookup. Returns the plan for `key` when it verifies: structurally
  // equal to `root` (leaf fingerprints via `leaf_fp`), recorded under
  // `profile_token`, and not poisoned. A plan failing the profile or sanity
  // check is dropped (counted as an invalidation) and the lookup misses.
  // On a raw miss with a non-null `canonical`, the canonical index gives a
  // second chance: a plan whose canonical form matches the query's is
  // returned (verified by StructuralEqual over the canonical forms) and
  // counted as a canonical hit. One miss is counted only when both fail.
  std::shared_ptr<const CachedPlan> Lookup(uint64_t key, const ExprPtr& root,
                                           const LeafFingerprintFn& leaf_fp,
                                           const void* profile_token,
                                           const CanonicalFn& canonical =
                                               nullptr);

  // Inserts (or replaces) the plan under plan->key. The
  // "service.plan_poison" fail point corrupts the stored plan's sanity
  // marker so tests can exercise the poisoned-drop path.
  void Insert(std::shared_ptr<CachedPlan> plan);

  // Drops every plan depending on operand fingerprint `fp`; returns the
  // number dropped.
  int64_t InvalidateFingerprint(uint64_t fp);

  // Drops everything; returns the number of plans dropped.
  int64_t Clear();

  PlanCacheStats stats() const;

 private:
  struct Slot {
    std::shared_ptr<CachedPlan> plan;
    std::atomic<uint64_t> last_use{0};
  };

  // Unlinks the slot at `it` from both indexes. Requires mu_ exclusive.
  void EraseLocked(std::unordered_map<uint64_t, Slot>::iterator it);
  void EnforceBudgetLocked(uint64_t keep_key);

  // Fetches the slot's plan under the shared lock and bumps its LRU tick;
  // null when `key` is absent.
  std::shared_ptr<CachedPlan> FetchAndTouch(uint64_t key);
  // Drops `plan` if it is still resident under `key` (invalidation at use:
  // profile mismatch or poison). Takes mu_ exclusively.
  void DropInvalidated(uint64_t key, const std::shared_ptr<CachedPlan>& plan);

  const int64_t budget_;
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, Slot> by_key_;
  // fingerprint -> keys of the plans depending on it.
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> fp_index_;
  // canonical hash -> raw key of a representative plan (latest inserted).
  std::unordered_map<uint64_t, uint64_t> canonical_index_;
  int64_t bytes_ = 0;
  std::atomic<uint64_t> tick_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> canonical_hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace mnc

#endif  // MNC_SERVICE_PLAN_CACHE_H_
