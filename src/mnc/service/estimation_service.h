// EstimationService — a thread-safe, long-lived front end for repeated
// sparsity-estimation traffic.
//
// The paper's premise is that MNC sketches are cheap to build once and
// reusable across many estimation queries (§3.3, §5); inside SystemDS the
// optimizer exploits exactly this reuse. This service provides the same
// amortization as a standalone subsystem:
//
//   - Sketch catalog: RegisterMatrix stores the MncSketch of a base matrix
//     keyed by its content fingerprint (CRC32-based, MatrixFingerprint), so
//     re-registering identical data — under the same or another name — is a
//     hit that reuses the existing sketch. Catalog entries are permanent
//     (names never disappear), but their sketches can spill: see below.
//   - Streaming registrations: RegisterMatrixStreaming builds a sketch
//     straight from files via chunked ingestion (mnc/ingest) — the matrix
//     itself is never materialized; peak memory is O(chunk + sketch). The
//     catalog leaf is a sketch-only ExprNode::SketchLeaf: estimation over
//     it works exactly as for matrix-backed leaves, while materializing
//     Execute of a DAG containing one fails with kFailedPrecondition.
//   - Spill-to-disk catalog tier: with catalog_resident_budget_bytes > 0
//     and a spill_dir, cold sketches are evicted (LRU) to checksummed disk
//     segments (ingest::SpillStore, sketch wire format v2) when resident
//     sketch bytes exceed the budget, and transparently faulted back in on
//     the next catalog hit. A corrupted or unreadable segment degrades:
//     matrix-backed leaves silently re-sketch; sketch-only leaves fall
//     through to the fallback chain like any other MNC-path failure.
//   - Memoized propagation: every query DAG is canonicalized
//     (CanonicalizeExpr) and each sub-expression's propagated sketch is
//     memoized in a SketchMemoCache keyed by structural hash, with LRU
//     eviction under a configurable byte budget (accounted via
//     MncSketch::MemoryBytes). Two differently-parenthesized but equivalent
//     product chains share one memo entry; a repeated query is answered
//     from the root entry without propagating anything.
//   - Graceful degradation: sketch construction poisoned by the
//     "service.sketch_build" fail point (or any other failure of the MNC
//     path) degrades the query to the PR-1 FallbackEstimator chain
//     (MNC -> DMap -> MetaAC) instead of failing; a poisoned cache entry
//     (simulated by "service.memo_poison") is dropped on lookup and
//     recomputed. Only when the fallback is disabled or unusable does
//     Estimate return an error Status.
//   - Batch/concurrent API: Estimate is safe to call from many threads
//     concurrently (catalog and memo take shared locks on the read path;
//     all per-query estimator state is call-local); EstimateBatch fans a
//     batch out over an internal thread pool and returns per-query
//     StatusOr results in order.
//
// Determinism: propagation uses the configured rounding mode with an Rng
// seeded per node from the node's structural hash, so a given canonical
// expression always propagates to the same sketch regardless of thread
// interleaving or cache state — memoization never changes answers.

#ifndef MNC_SERVICE_ESTIMATION_SERVICE_H_
#define MNC_SERVICE_ESTIMATION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mnc/core/mnc_propagation.h"
#include "mnc/core/mnc_sketch.h"
#include "mnc/ingest/spill_store.h"
#include "mnc/ir/expr.h"
#include "mnc/ir/expr_hash.h"
#include "mnc/matrix/ops_product.h"
#include "mnc/service/packed_operand.h"
#include "mnc/service/plan_cache.h"
#include "mnc/service/sketch_cache.h"
#include "mnc/util/deadline.h"
#include "mnc/util/parallel.h"
#include "mnc/util/status.h"
#include "mnc/util/thread_pool.h"

namespace mnc {

struct EstimationServiceOptions {
  // Memo-table budget in bytes; <= 0 disables sub-expression memoization
  // (the catalog still works).
  int64_t memo_budget_bytes = 8LL << 20;  // 8 MB

  // Threads for EstimateBatch; <= 0 selects the hardware concurrency.
  int num_threads = 0;

  // Degrade to the FallbackEstimator chain when the MNC path fails; when
  // false such queries return an error Status instead.
  bool enable_fallback = true;

  // Seed mixed into the per-node propagation Rngs.
  uint64_t seed = 42;

  // Rounding for propagated count vectors (§3.3). Probabilistic rounding is
  // the paper's choice; determinism across repeated queries is preserved
  // anyway because the Rng is re-seeded per node from the structural hash.
  RoundingMode rounding = RoundingMode::kProbabilistic;

  // Intra-query parallelism. The default (num_threads == 1) runs every
  // kernel sequentially and reproduces the historical estimates exactly.
  // With num_threads != 1, sketch construction, Algorithm 1 estimation and
  // Eq. 11/15 propagation run on the internal pool; propagation then draws
  // from per-block PRNG streams seeded from (node_hash ^ seed), so results
  // stay deterministic at any thread count (see mnc/util/parallel.h) but
  // are distribution-equal — not draw-for-draw equal — to the sequential
  // default.
  ParallelConfig parallel;

  // Resident-sketch byte budget for the catalog spill tier; <= 0 (default)
  // keeps every sketch resident. Spilling requires spill_dir too: evicting
  // without a segment store would lose sketches, so a positive budget with
  // an empty spill_dir is ignored.
  int64_t catalog_resident_budget_bytes = 0;

  // Directory for spill segments (created on first use); empty disables the
  // spill tier.
  std::string spill_dir;

  // Triplets per chunk for RegisterMatrixStreaming (the peak-memory knob of
  // streaming ingestion).
  int64_t ingest_chunk_entries = int64_t{1} << 16;

  // Sketch-guided execution for Execute/ExecuteSource: products are
  // pre-sized, format-dispatched and accumulator-dispatched from cataloged/
  // propagated sketches (see mnc/ir/evaluator.h). Values are bit-identical
  // with the flag on or off; only performance and the guided counters in
  // ServiceStats change.
  bool guided_exec = false;

  // Machine calibration profile (mnc/tuning/machine_profile.h, produced by
  // `mnc_tool calibrate`): steers seq-vs-par dispatch of sketch build /
  // estimation / propagation / SpGEMM and the guided-execution break-evens
  // for this service instance. nullptr falls back to the process-wide
  // active profile (lazily loaded from disk), then to the built-in
  // constants. Purely a performance knob — every profile-driven choice is
  // bit-identical to the uncalibrated path.
  std::shared_ptr<const tuning::MachineProfile> profile;

  // Warm-path plan cache byte budget (mnc/service/plan_cache.h): repeated
  // guided Execute over the same expression + operands replays recorded
  // decisions and skips sketch propagation and per-row estimation entirely.
  // <= 0 disables; only effective together with guided_exec (plans record
  // guided decisions). Replayed results are bit-identical to cold guided
  // execution (enforced by the differential harness).
  int64_t plan_cache_budget_bytes = 16LL << 20;  // 16 MB

  // Packed-operand store byte budget (mnc/service/packed_operand.h):
  // per-operand packing — format verdict, leaf row table, cached exact
  // transpose — precomputed at RegisterMatrix time. <= 0 disables.
  int64_t packed_operand_budget_bytes = 32LL << 20;  // 32 MB
};

struct EstimateResult {
  double sparsity = 1.0;
  int64_t rows = 0;
  int64_t cols = 0;
  // True when the root answer came straight from the memo table (or the
  // catalog, for a bare leaf query) without any propagation.
  bool memo_hit = false;
  // "mnc" for the precise path, "memo" for a root cache hit, otherwise the
  // fallback tier that served ("DMap", "MetaAC", ...).
  std::string served_by;
};

struct ServiceStats {
  // Catalog.
  int64_t registered_names = 0;
  int64_t registered_sketches = 0;  // distinct fingerprints
  int64_t register_dedup_hits = 0;  // RegisterMatrix found existing content
  int64_t catalog_hits = 0;         // query leaves served from the catalog
  int64_t catalog_misses = 0;       // query leaves sketched on the fly
  // Queries.
  int64_t estimates = 0;
  int64_t batch_queries = 0;
  int64_t fallback_estimates = 0;
  int64_t failed_estimates = 0;
  // Execution.
  int64_t executions = 0;
  GuidedExecStats guided;
  // Warm-path plan cache + packed-operand store.
  int64_t plan_hits = 0;
  int64_t plan_canonical_hits = 0;  // second-chance hits (also in plan_hits)
  int64_t plan_misses = 0;
  int64_t plan_invalidations = 0;  // dropped by an invalidation edge
  int64_t plan_entries = 0;
  int64_t plan_bytes = 0;
  int64_t packed_operands = 0;
  int64_t packed_operand_bytes = 0;
  // Memo table.
  SketchMemoStats memo;
  // Streaming ingestion and the spill tier.
  int64_t streaming_registrations = 0;  // RegisterMatrixStreaming successes
  int64_t resident_bytes = 0;           // bytes of sketches currently in RAM
  int64_t spilled_sketches = 0;         // entries currently on disk only
  int64_t catalog_spills = 0;           // cumulative evictions to disk
  int64_t catalog_faults = 0;           // cumulative fault-backs from disk
  int64_t spill_read_failures = 0;
  int64_t spill_write_failures = 0;
};

// Multi-file composition mode for RegisterMatrixStreaming.
struct StreamRegisterOptions {
  enum class MultiFile {
    kRBind,  // files are row shards, concatenated vertically
    kUnion,  // files are same-shaped pieces of one matrix, added
  };
  MultiFile multi = MultiFile::kRBind;
};

class EstimationService {
 public:
  explicit EstimationService(EstimationServiceOptions options = {});

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  // Registers `m` under `name`, building its MNC sketch unless a matrix
  // with identical content is already cataloged (then the existing sketch
  // and leaf are reused and the name becomes an alias). Returns the catalog
  // leaf to build query expressions from. Re-registering an existing name
  // rebinds it. Fails (kUnavailable) when sketch construction is poisoned
  // by the "service.sketch_build" fail point.
  StatusOr<ExprPtr> RegisterMatrix(const std::string& name, const Matrix& m);

  // Registers the matrix stored in `path` (Matrix-Market or MNCT binary
  // triplets, sniffed) under `name` by streaming ingestion: the sketch is
  // built in O(chunk + sketch) memory and the matrix is never materialized.
  // Content-dedups against earlier streaming registrations via
  // ingest::SketchFingerprint (a space disjoint from MatrixFingerprint).
  // Returns a sketch-only catalog leaf.
  StatusOr<ExprPtr> RegisterMatrixStreaming(const std::string& name,
                                            const std::string& path);

  // Multi-file form: row shards concatenated (kRBind, tolerant merge — the
  // result then carries no extension vectors) or same-shaped pieces added
  // (kUnion, exact for disjoint supports).
  StatusOr<ExprPtr> RegisterMatrixStreaming(
      const std::string& name, const std::vector<std::string>& paths,
      const StreamRegisterOptions& opts);

  // The catalog leaf registered under `name`, or null when absent.
  ExprPtr LookupLeaf(const std::string& name) const;

  // The cataloged sketch for `name`, faulting it back from its spill
  // segment if evicted. kNotFound for unknown names; a spilled sketch whose
  // segment is unreadable surfaces that read error (after a matrix-backed
  // re-sketch attempt, when possible).
  StatusOr<std::shared_ptr<const MncSketch>> LookupSketch(
      const std::string& name);

  // Estimates the output sparsity of the DAG rooted at `root`. Leaves need
  // not be registered (unregistered leaves are fingerprinted and sketched
  // per query, and their sketches memoized like any sub-expression).
  //
  // A non-null `ctx` bounds the request: the deadline/cancel token is
  // checked cooperatively before every node's sketch is computed, and an
  // expired request returns kDeadlineExceeded from the next node boundary.
  // Deadline failures never degrade to the fallback chain and are never
  // memoized; work already stored in catalog/memo stays valid.
  StatusOr<EstimateResult> Estimate(const ExprPtr& root,
                                    const RequestContext* ctx = nullptr);

  // Parses `source` (expression or multi-statement script, see
  // mnc/lang/parser.h) over the registered matrices and estimates it.
  StatusOr<EstimateResult> EstimateSource(const std::string& source,
                                          const RequestContext* ctx = nullptr);

  // Estimates a batch concurrently on the internal pool; results align with
  // `roots` (null roots yield kInvalidArgument entries). The shared `ctx`
  // bounds the whole batch: entries dispatched after expiry return
  // kDeadlineExceeded without computing anything.
  std::vector<StatusOr<EstimateResult>> EstimateBatch(
      const std::vector<ExprPtr>& roots, const RequestContext* ctx = nullptr);

  // Per-entry bounded form: entry i is bounded by ctxs[i] (null pointers,
  // or a `ctxs` shorter than `roots`, mean unbounded entries).
  std::vector<StatusOr<EstimateResult>> EstimateBatch(
      const std::vector<ExprPtr>& roots,
      const std::vector<const RequestContext*>& ctxs);

  // Batched EstimateSource — the serving tier's coalescing path. One catalog
  // snapshot serves every parse, and identical source texts in the batch
  // share a single parse + estimate (concurrent clients asking for the same
  // expression amortize to one computation). Results align with `sources`
  // and keep per-request semantics: parse and estimation errors are typed
  // per entry, and each entry honors its own context — a member whose
  // deadline expired (or whose connection cancelled) while a shared
  // computation ran reports kDeadlineExceeded even though neighbors sharing
  // that computation get the result. Shared computations for multi-member
  // groups run under a merged bound (the laxest member's deadline, no cancel
  // token) so one member giving up never cancels its neighbors.
  std::vector<StatusOr<EstimateResult>> EstimateSourceBatch(
      const std::vector<std::string>& sources,
      const std::vector<const RequestContext*>& ctxs);

  // Evaluates the DAG on the internal pool. With options.guided_exec set,
  // execution is sketch-guided: cataloged leaf sketches are reused (ad-hoc
  // leaves are sketched on the fly) and every product consults the
  // estimates; the guided counters are folded into stats(). Values are
  // identical either way. `ctx` is checked at the execution boundary
  // (evaluation itself is not interrupted mid-kernel).
  StatusOr<Matrix> Execute(const ExprPtr& root,
                           const RequestContext* ctx = nullptr);

  // Parses `source` over the registered matrices and executes it.
  StatusOr<Matrix> ExecuteSource(const std::string& source,
                                 const RequestContext* ctx = nullptr);

  ServiceStats stats() const;
  void ClearMemo() { memo_.Clear(); }

  // Drops every catalog entry (names, fingerprints, storage keys, resident
  // bytes) along with every packed operand and cached plan — the coarse
  // invalidation edge. Spill segments already on disk are left behind;
  // cleared entries can never reference them again. Roots held by callers
  // stay executable (their leaves pin the matrices), they just lose warm
  // service state.
  void ClearCatalog();

  const EstimationServiceOptions& options() const { return options_; }

 private:
  struct CatalogEntry {
    std::string first_name;  // first name this content was registered under
    uint64_t fingerprint = 0;
    ExprPtr leaf;
    bool streaming = false;    // sketch-only leaf (no backing matrix)
    int64_t sketch_bytes = 0;  // MemoryBytes of the sketch, for the budget

    // Mutable under catalog_mu_ (exclusive): null while spilled to disk.
    std::shared_ptr<const MncSketch> sketch;
    // A spill segment for this fingerprint exists on disk; re-evicting a
    // faulted-back entry is then free (the pointer is just dropped).
    bool spilled = false;
    // LRU clock for eviction; atomic so catalog hits can touch it under the
    // shared lock.
    std::atomic<uint64_t> last_use{0};
  };

  struct QueryCtx {
    ExprHasher hasher;
    LeafFingerprintFn resolver;
    // Per-query pointer-keyed cache so shared subtrees resolve once.
    std::unordered_map<const ExprNode*, std::shared_ptr<const MncSketch>>
        local;
    // Request bounds (deadline/cancellation); may be null.
    const RequestContext* request = nullptr;

    explicit QueryCtx(LeafFingerprintFn fn, const RequestContext* rc = nullptr)
        : hasher(fn), resolver(std::move(fn)), request(rc) {}
  };

  LeafFingerprintFn MakeResolver() const;

  // Registers a streaming-built sketch under `name` (shared tail of the
  // RegisterMatrixStreaming overloads).
  StatusOr<ExprPtr> RegisterSketch(const std::string& name, MncSketch sketch);

  // Bumps the entry's LRU clock (safe under the shared lock).
  void TouchEntry(CatalogEntry& entry) const;

  // Restores a spilled entry's sketch from its segment; `entry->leaf` is
  // used to re-sketch from the backing matrix when the segment is
  // unreadable. Takes catalog_mu_ internally (caller must NOT hold it).
  StatusOr<std::shared_ptr<const MncSketch>> FaultBackSketch(
      const std::shared_ptr<CatalogEntry>& entry);

  // Evicts least-recently-used resident sketches (never `keep`) until the
  // resident total fits the budget. Requires catalog_mu_ held exclusively.
  // A failed segment write stops eviction (budget temporarily exceeded)
  // rather than dropping an unreplicated sketch.
  void EnforceCatalogBudgetLocked(const CatalogEntry* keep);

  // Sketch of `node`, via catalog/memo or by building/propagating.
  StatusOr<std::shared_ptr<const MncSketch>> ComputeSketch(
      const ExprPtr& node, QueryCtx& ctx);

  // Stores a computed sketch in the memo table under `hash`; the
  // "service.memo_poison" fail point corrupts the stored estimate so tests
  // can exercise the cache's poisoned-entry drop path.
  void InsertMemo(uint64_t hash, const ExprPtr& canonical,
                  const std::shared_ptr<const MncSketch>& sketch);

  // Derives the sketch of a non-leaf canonical node from its children's
  // sketches (deterministic per node: Rng seeded from the structural hash).
  MncSketch PropagateNode(const ExprPtr& node, uint64_t node_hash,
                          const MncSketch& left,
                          const MncSketch* right) const;

  StatusOr<EstimateResult> EstimateDegraded(const ExprPtr& canonical,
                                            const Status& cause);

  // The calibration profile token plans are recorded/validated under: the
  // instance profile, else the process-wide active profile pointer. A
  // change of active profile flips the token and invalidates at lookup.
  const void* ProfileToken() const;

  // Evaluator hook resolving a cataloged leaf's pre-packed transpose (null
  // hook when the packed store is disabled).
  std::function<std::shared_ptr<const Matrix>(const ExprNode&)>
  MakeTransposeHook();

  // Evaluator hook resolving cataloged leaf sketches for guided execution.
  std::function<std::shared_ptr<const MncSketch>(const ExprNode&)>
  MakeLeafSketchHook();

  // Assembles and inserts the plan recorded during a cold guided Execute.
  void RecordPlan(uint64_t key, const ExprPtr& root,
                  const LeafFingerprintFn& resolver, const void* profile_token,
                  std::unordered_map<const ExprNode*, ProductPlanEntry>
                      products,
                  const Evaluator& evaluator);

  const EstimationServiceOptions options_;

  mutable std::shared_mutex catalog_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<CatalogEntry>> by_fp_;
  std::unordered_map<std::string, std::shared_ptr<CatalogEntry>> by_name_;
  // Spill tier (null when disabled); guarded by catalog_mu_ together with
  // the residency bookkeeping below.
  std::unique_ptr<ingest::SpillStore> spill_;
  int64_t resident_bytes_ = 0;
  // Storage-block identity -> fingerprint for registered matrices: lets
  // query leaves that share storage with a cataloged matrix (e.g. parser
  // bindings) skip the O(nnz) fingerprint rescan. Keys stay valid because
  // catalog entries pin the storage.
  std::unordered_map<const void*, uint64_t> storage_fp_;

  SketchMemoCache memo_;
  // Warm-path serving tier: recorded execution plans keyed by raw
  // structural hash, and per-operand packing keyed by fingerprint. Their
  // internal locks are only ever acquired after (never before) catalog_mu_.
  PlanCache plan_cache_;
  PackedOperandStore packed_;
  // mutable: the pool carries no logical service state, and const query
  // paths (PropagateNode) schedule work on it.
  mutable ThreadPool pool_;

  mutable std::atomic<int64_t> register_dedup_hits_{0};
  mutable std::atomic<int64_t> catalog_hits_{0};
  mutable std::atomic<int64_t> catalog_misses_{0};
  mutable std::atomic<int64_t> estimates_{0};
  mutable std::atomic<int64_t> batch_queries_{0};
  mutable std::atomic<int64_t> fallback_estimates_{0};
  mutable std::atomic<int64_t> failed_estimates_{0};
  mutable std::atomic<int64_t> executions_{0};
  mutable std::atomic<int64_t> streaming_registrations_{0};
  mutable std::atomic<int64_t> catalog_spills_{0};
  mutable std::atomic<int64_t> catalog_faults_{0};
  mutable std::atomic<int64_t> spill_read_failures_{0};
  mutable std::atomic<int64_t> spill_write_failures_{0};
  // LRU clock source for CatalogEntry::last_use.
  mutable std::atomic<uint64_t> use_tick_{0};

  // Guided-execution counters merged from per-call Evaluators.
  mutable std::mutex exec_mu_;
  GuidedExecStats guided_stats_;
};

}  // namespace mnc

#endif  // MNC_SERVICE_ESTIMATION_SERVICE_H_
