#include "mnc/service/packed_operand.h"

#include <algorithm>
#include <utility>

#include "mnc/matrix/ops_reorg.h"

namespace mnc {

namespace {

int64_t MatrixStorageBytes(const Matrix& m) {
  if (m.is_dense()) {
    return m.rows() * m.cols() * static_cast<int64_t>(sizeof(double));
  }
  const CsrMatrix& c = m.csr();
  return static_cast<int64_t>(c.row_ptr().capacity() * sizeof(int64_t) +
                              c.col_idx().capacity() * sizeof(int64_t) +
                              c.values().capacity() * sizeof(double));
}

}  // namespace

const char* PackedFormatName(PackedFormat f) {
  switch (f) {
    case PackedFormat::kCsr:
      return "csr";
    case PackedFormat::kCsc:
      return "csc";
    case PackedFormat::kDense:
      return "dense";
  }
  return "?";
}

PackedFormat ClassifyPackedFormat(const MncSketch& sketch) {
  if (sketch.Sparsity() >= kDenseDispatchThreshold) return PackedFormat::kDense;
  const double nnz = static_cast<double>(sketch.nnz());
  const double mean_row =
      nnz / static_cast<double>(std::max<int64_t>(1, sketch.non_empty_rows()));
  const double mean_col =
      nnz / static_cast<double>(std::max<int64_t>(1, sketch.non_empty_cols()));
  return mean_col >= 4.0 * mean_row ? PackedFormat::kCsc : PackedFormat::kCsr;
}

void PackedOperandStore::BuildAndInsert(uint64_t fp, const Matrix& m,
                                        const MncSketch& sketch) {
  if (!enabled()) return;

  auto packed = std::make_shared<PackedOperand>();
  packed->fingerprint = fp;
  packed->rows = sketch.rows();
  packed->cols = sketch.cols();
  packed->nnz = sketch.nnz();
  packed->sparsity = sketch.Sparsity();
  packed->verdict = ClassifyPackedFormat(sketch);
  // Leaf base case of the per-row machinery: an exact sketch's hr IS the
  // row pattern count, so upper == estimate == hr and every row is exact.
  const std::vector<int64_t>& hr = sketch.hr();
  packed->row_table.upper.assign(hr.begin(), hr.end());
  packed->row_table.estimate.resize(hr.size());
  for (size_t i = 0; i < hr.size(); ++i) {
    packed->row_table.estimate[i] = static_cast<double>(hr[i]);
    packed->row_table.summary.estimate_total += static_cast<double>(hr[i]);
    packed->row_table.summary.upper_bound_total += hr[i];
  }
  packed->row_table.summary.exact_rows = static_cast<int64_t>(hr.size());
  packed->base_bytes = static_cast<int64_t>(sizeof(PackedOperand)) +
                       packed->row_table.MemoryBytes();
  // A column-skewed operand will be consumed through column-major access
  // (transposes, right-factor kernels); pack the transpose up front so even
  // the first Execute gets it for free.
  if (packed->verdict == PackedFormat::kCsc) {
    packed->transpose = std::make_shared<const Matrix>(Transpose(m));
    packed->transpose_bytes = MatrixStorageBytes(*packed->transpose);
    transpose_builds_.fetch_add(1, std::memory_order_relaxed);
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  if (auto it = by_fp_.find(fp); it != by_fp_.end()) {
    bytes_ -= it->second->base_bytes + it->second->transpose_bytes;
    by_fp_.erase(it);
  }
  packed->last_use.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  bytes_ += packed->base_bytes + packed->transpose_bytes;
  PackedOperand* keep = packed.get();
  by_fp_.emplace(fp, std::move(packed));
  builds_.fetch_add(1, std::memory_order_relaxed);
  EnforceBudgetLocked(keep);
}

std::shared_ptr<const PackedOperand> PackedOperandStore::Lookup(uint64_t fp) {
  if (!enabled()) return nullptr;
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_fp_.find(fp);
  if (it == by_fp_.end()) return nullptr;
  it->second->last_use.store(
      tick_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  return it->second;
}

std::shared_ptr<const Matrix> PackedOperandStore::TransposeFor(
    uint64_t fp, const Matrix& m) {
  if (!enabled()) return nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = by_fp_.find(fp);
    if (it == by_fp_.end()) return nullptr;
    it->second->last_use.store(
        tick_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    if (it->second->transpose != nullptr) {
      transpose_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->transpose;
    }
  }
  // Pack outside the lock; racing packers compute the identical matrix and
  // the first to re-acquire installs it (the loser adopts the winner's).
  auto transpose = std::make_shared<const Matrix>(Transpose(m));
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_fp_.find(fp);
  if (it == by_fp_.end()) return transpose;  // evicted meanwhile: still valid
  if (it->second->transpose == nullptr) {
    it->second->transpose = transpose;
    it->second->transpose_bytes = MatrixStorageBytes(*transpose);
    bytes_ += it->second->transpose_bytes;
    transpose_builds_.fetch_add(1, std::memory_order_relaxed);
    EnforceBudgetLocked(it->second.get());
  }
  return it->second->transpose;
}

bool PackedOperandStore::Erase(uint64_t fp) {
  if (!enabled()) return false;
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_fp_.find(fp);
  if (it == by_fp_.end()) return false;
  bytes_ -= it->second->base_bytes + it->second->transpose_bytes;
  by_fp_.erase(it);
  return true;
}

void PackedOperandStore::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  by_fp_.clear();
  bytes_ = 0;
}

PackedStoreStats PackedOperandStore::stats() const {
  PackedStoreStats s;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    s.entries = static_cast<int64_t>(by_fp_.size());
    s.bytes = bytes_;
  }
  s.builds = builds_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.transpose_builds = transpose_builds_.load(std::memory_order_relaxed);
  s.transpose_hits = transpose_hits_.load(std::memory_order_relaxed);
  return s;
}

void PackedOperandStore::EnforceBudgetLocked(const PackedOperand* keep) {
  while (bytes_ > budget_ && by_fp_.size() > (keep != nullptr ? 1u : 0u)) {
    auto victim = by_fp_.end();
    uint64_t victim_use = 0;
    for (auto it = by_fp_.begin(); it != by_fp_.end(); ++it) {
      if (it->second.get() == keep) continue;
      const uint64_t use = it->second->last_use.load(std::memory_order_relaxed);
      if (victim == by_fp_.end() || use < victim_use) {
        victim = it;
        victim_use = use;
      }
    }
    if (victim == by_fp_.end()) break;
    bytes_ -= victim->second->base_bytes + victim->second->transpose_bytes;
    by_fp_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace mnc
