#include "mnc/service/estimation_service.h"

#include <cmath>
#include <map>
#include <utility>

#include "mnc/estimators/fallback_estimator.h"
#include "mnc/ir/evaluator.h"
#include "mnc/ir/sketch_propagator.h"
#include "mnc/lang/parser.h"
#include "mnc/util/fail_point.h"
#include "mnc/util/random.h"

namespace mnc {

namespace {

// Fail point poisoning sketch construction (RegisterMatrix and on-the-fly
// leaf sketching inside queries).
constexpr char kSketchBuildFailPoint[] = "service.sketch_build";
// Fail point corrupting the sparsity stored with a memo entry; the cache's
// sanity check drops such entries on the next lookup.
constexpr char kMemoPoisonFailPoint[] = "service.memo_poison";
// Fail point breaking catalog sketch reads: a registered leaf behaves as if
// its cataloged sketch were unreadable, failing the MNC tier for the query.
// This is the knob that lets the serving tier demonstrate degraded-but-
// served responses for expressions whose leaves are all registered (the
// common case over the wire), where sketch_build never fires.
constexpr char kCatalogReadFailPoint[] = "service.catalog_read";

}  // namespace

EstimationService::EstimationService(EstimationServiceOptions options)
    : options_(options),
      memo_(options.memo_budget_bytes),
      pool_(options.num_threads) {}

LeafFingerprintFn EstimationService::MakeResolver() const {
  // Per-query storage-key cache: one query's hasher, equality checks, and
  // memo lookups may all ask for the same leaf's fingerprint.
  auto cache = std::make_shared<std::unordered_map<const void*, uint64_t>>();
  return [this, cache](const ExprNode& leaf) -> uint64_t {
    const void* key = leaf.matrix().storage_key();
    if (auto it = cache->find(key); it != cache->end()) return it->second;
    uint64_t fp = 0;
    bool found = false;
    {
      std::shared_lock<std::shared_mutex> lock(catalog_mu_);
      if (auto it = storage_fp_.find(key); it != storage_fp_.end()) {
        fp = it->second;
        found = true;
      }
    }
    if (!found) fp = MatrixFingerprint(leaf.matrix());
    cache->emplace(key, fp);
    return fp;
  };
}

StatusOr<ExprPtr> EstimationService::RegisterMatrix(const std::string& name,
                                                    const Matrix& m) {
  const uint64_t fp = MatrixFingerprint(m);

  std::shared_ptr<const CatalogEntry> entry;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    if (auto it = by_fp_.find(fp); it != by_fp_.end()) entry = it->second;
  }

  std::shared_ptr<const CatalogEntry> fresh;
  if (entry == nullptr) {
    if (MncFailPointArmed(kSketchBuildFailPoint)) {
      return Status::Unavailable("fail point " +
                                 std::string(kSketchBuildFailPoint) +
                                 ": sketch construction failed")
          .WithContext("register '" + name + "'");
    }
    auto built = std::make_shared<CatalogEntry>();
    built->first_name = name;
    built->fingerprint = fp;
    built->leaf = ExprNode::Leaf(m, name);
    built->sketch = std::make_shared<const MncSketch>(
        MncSketch::FromMatrix(m, options_.parallel, &pool_));
    fresh = std::move(built);
  }

  {
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    if (auto it = by_fp_.find(fp); it != by_fp_.end()) {
      // Found first time around, or a racing registration beat us.
      entry = it->second;
      register_dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      entry = fresh;
      by_fp_.emplace(fp, entry);
    }
    by_name_[name] = entry;
    // Only the entry's own leaf pins its storage; a deduplicated caller
    // matrix may be freed after this call, so its storage key must not be
    // remembered (the address could be recycled by an unrelated matrix).
    storage_fp_[entry->leaf->matrix().storage_key()] = entry->fingerprint;
  }
  return entry->leaf;
}

ExprPtr EstimationService::LookupLeaf(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second->leaf : nullptr;
}

StatusOr<std::shared_ptr<const MncSketch>> EstimationService::ComputeSketch(
    const ExprPtr& node, QueryCtx& ctx) {
  // Cooperative deadline/cancellation boundary: one check per node keeps
  // the overhead negligible next to sketch builds and propagation, yet an
  // expired request stops before starting any further O(nnz) work.
  if (ctx.request != nullptr) {
    MNC_RETURN_IF_ERROR(ctx.request->Check("estimate"));
  }
  if (auto it = ctx.local.find(node.get()); it != ctx.local.end()) {
    return it->second;
  }

  std::shared_ptr<const MncSketch> sketch;
  if (node->is_leaf()) {
    const uint64_t fp = ctx.resolver(*node);
    {
      std::shared_lock<std::shared_mutex> lock(catalog_mu_);
      if (auto it = by_fp_.find(fp); it != by_fp_.end()) {
        sketch = it->second->sketch;
      }
    }
    if (sketch != nullptr && MncFailPointArmed(kCatalogReadFailPoint)) {
      return Status::Unavailable(
          "fail point " + std::string(kCatalogReadFailPoint) +
          ": cataloged sketch unavailable for leaf '" + node->name() + "'");
    }
    if (sketch != nullptr) {
      catalog_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      catalog_misses_.fetch_add(1, std::memory_order_relaxed);
      // Unregistered leaves are memoized like any sub-expression, so a
      // repeated ad-hoc query still skips the O(nnz) sketch build.
      const uint64_t h = ctx.hasher.Hash(node);
      if (auto hit = memo_.Lookup(h, node, ctx.resolver)) {
        sketch = hit->sketch;
      } else {
        if (MncFailPointArmed(kSketchBuildFailPoint)) {
          return Status::Unavailable(
              "fail point " + std::string(kSketchBuildFailPoint) +
              ": sketch construction failed for leaf '" + node->name() + "'");
        }
        sketch = std::make_shared<const MncSketch>(
            MncSketch::FromMatrix(node->matrix(), options_.parallel, &pool_));
        InsertMemo(h, node, sketch);
      }
    }
  } else {
    const uint64_t h = ctx.hasher.Hash(node);
    if (auto hit = memo_.Lookup(h, node, ctx.resolver)) {
      sketch = hit->sketch;
    } else {
      MNC_ASSIGN_OR_RETURN(std::shared_ptr<const MncSketch> left,
                           ComputeSketch(node->left(), ctx));
      std::shared_ptr<const MncSketch> right;
      if (node->right() != nullptr) {
        MNC_ASSIGN_OR_RETURN(right, ComputeSketch(node->right(), ctx));
      }
      sketch = std::make_shared<const MncSketch>(
          PropagateNode(node, h, *left, right.get()));
      InsertMemo(h, node, sketch);
    }
  }

  ctx.local.emplace(node.get(), sketch);
  return sketch;
}

void EstimationService::InsertMemo(
    uint64_t hash, const ExprPtr& canonical,
    const std::shared_ptr<const MncSketch>& sketch) {
  SketchMemoCache::Entry entry;
  entry.canonical = canonical;
  entry.sketch = sketch;
  entry.sparsity = sketch->Sparsity();
  if (MncFailPointArmed(kMemoPoisonFailPoint)) {
    entry.sparsity = std::nan("");
  }
  memo_.Insert(hash, std::move(entry));
}

MncSketch EstimationService::PropagateNode(const ExprPtr& node,
                                           uint64_t node_hash,
                                           const MncSketch& left,
                                           const MncSketch* right) const {
  // Seeding from the structural hash makes propagation a pure function of
  // the canonical node: repeated/concurrent queries agree with each other
  // and with whatever the memo table holds. The parallel overloads keep the
  // same property: the seed (not an Rng) crosses the API boundary and each
  // block derives its own stream from it, so no PRNG state is ever shared
  // between tasks.
  return PropagateNodeSketch(*node, left, right, node_hash ^ options_.seed,
                             options_.rounding, options_.parallel, &pool_);
}

StatusOr<EstimateResult> EstimationService::Estimate(
    const ExprPtr& root, const RequestContext* request) {
  estimates_.fetch_add(1, std::memory_order_relaxed);
  if (root == nullptr) {
    failed_estimates_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("Estimate called with a null expression");
  }
  if (request != nullptr) {
    Status bound = request->Check("estimate");
    if (!bound.ok()) {
      failed_estimates_.fetch_add(1, std::memory_order_relaxed);
      return bound;
    }
  }

  QueryCtx ctx(MakeResolver(), request);
  const ExprPtr canonical = CanonicalizeExpr(root, ctx.resolver);

  EstimateResult result;
  result.rows = canonical->rows();
  result.cols = canonical->cols();

  if (canonical->is_leaf()) {
    auto sketch = ComputeSketch(canonical, ctx);
    if (!sketch.ok()) return EstimateDegraded(canonical, sketch.status());
    result.sparsity = (*sketch)->Sparsity();
    result.served_by = "mnc";
    return result;
  }

  // Root fast path: a repeated query is answered from the memo entry's
  // stored estimate without touching any sketch.
  const uint64_t root_hash = ctx.hasher.Hash(canonical);
  if (auto hit = memo_.Lookup(root_hash, canonical, ctx.resolver)) {
    result.sparsity = hit->sparsity;
    result.memo_hit = true;
    result.served_by = "memo";
    return result;
  }

  auto left = ComputeSketch(canonical->left(), ctx);
  if (!left.ok()) return EstimateDegraded(canonical, left.status());
  std::shared_ptr<const MncSketch> right;
  if (canonical->right() != nullptr) {
    auto r = ComputeSketch(canonical->right(), ctx);
    if (!r.ok()) return EstimateDegraded(canonical, r.status());
    right = *r;
  }

  auto root_sketch = std::make_shared<const MncSketch>(
      PropagateNode(canonical, root_hash, **left, right.get()));
  result.sparsity = root_sketch->Sparsity();
  result.served_by = "mnc";
  InsertMemo(root_hash, canonical, root_sketch);
  return result;
}

StatusOr<EstimateResult> EstimationService::EstimateDegraded(
    const ExprPtr& canonical, const Status& cause) {
  // A request that ran out of time must not be "rescued" by the fallback
  // chain: serving a late answer defeats the deadline, and the cheap tiers
  // would still add latency. The typed error propagates as-is.
  if (cause.code() == StatusCode::kDeadlineExceeded) {
    failed_estimates_.fetch_add(1, std::memory_order_relaxed);
    return cause;
  }
  if (options_.enable_fallback) {
    // Per-call estimator: FallbackEstimator carries mutable per-request
    // state, so sharing one across threads would race. Degraded results are
    // deliberately NOT memoized — once the fault clears, the precise path
    // repopulates the cache.
    FallbackEstimator fallback;
    SketchPropagator propagator(&fallback);
    const std::optional<double> sparsity =
        propagator.EstimateSparsity(canonical);
    if (sparsity.has_value() && std::isfinite(*sparsity) && *sparsity >= 0.0 &&
        *sparsity <= 1.0) {
      fallback_estimates_.fetch_add(1, std::memory_order_relaxed);
      EstimateResult result;
      result.sparsity = *sparsity;
      result.rows = canonical->rows();
      result.cols = canonical->cols();
      result.served_by = fallback.last_serving_tier().empty()
                             ? "fallback"
                             : fallback.last_serving_tier();
      return result;
    }
  }
  failed_estimates_.fetch_add(1, std::memory_order_relaxed);
  return cause.WithContext(options_.enable_fallback
                               ? "MNC path failed and fallback was unusable"
                               : "MNC path failed and fallback is disabled");
}

StatusOr<EstimateResult> EstimationService::EstimateSource(
    const std::string& source, const RequestContext* request) {
  std::map<std::string, Matrix> bindings;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    for (const auto& [name, entry] : by_name_) {
      bindings.emplace(name, entry->leaf->matrix());
    }
  }
  const ParseResult parsed = ParseProgram(source, bindings);
  if (!parsed.ok()) {
    return Status::InvalidArgument("parse error: " + parsed.error);
  }
  return Estimate(parsed.expr, request);
}

StatusOr<Matrix> EstimationService::Execute(const ExprPtr& root,
                                            const RequestContext* request) {
  executions_.fetch_add(1, std::memory_order_relaxed);
  if (root == nullptr) {
    return Status::InvalidArgument("Execute called with a null expression");
  }
  if (request != nullptr) {
    MNC_RETURN_IF_ERROR(request->Check("execute"));
  }
  EvaluatorOptions opts;
  opts.guided = options_.guided_exec;
  opts.seed = options_.seed;
  opts.rounding = options_.rounding;
  if (options_.guided_exec) {
    // Leaves whose storage is cataloged reuse their registered sketches;
    // ad-hoc leaves return nullptr and are sketched by the evaluator.
    opts.leaf_sketches =
        [this](const ExprNode& leaf) -> std::shared_ptr<const MncSketch> {
      std::shared_lock<std::shared_mutex> lock(catalog_mu_);
      if (auto it = storage_fp_.find(leaf.matrix().storage_key());
          it != storage_fp_.end()) {
        if (auto fit = by_fp_.find(it->second); fit != by_fp_.end()) {
          return fit->second->sketch;
        }
      }
      return nullptr;
    };
  }
  // Per-call evaluator: its caches key on node identity, which is only
  // stable within one caller's DAG.
  Evaluator evaluator(&pool_, std::move(opts));
  StatusOr<Matrix> result = evaluator.TryEvaluate(root);
  if (options_.guided_exec) {
    std::lock_guard<std::mutex> lock(exec_mu_);
    guided_stats_.MergeFrom(evaluator.guided_stats());
  }
  // Evaluation is not interrupted mid-kernel, but a request whose deadline
  // passed while executing reports the typed error rather than handing a
  // late result to a caller that already gave up on it.
  if (result.ok() && request != nullptr) {
    MNC_RETURN_IF_ERROR(request->Check("execute"));
  }
  return result;
}

StatusOr<Matrix> EstimationService::ExecuteSource(const std::string& source,
                                                  const RequestContext* request) {
  std::map<std::string, Matrix> bindings;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    for (const auto& [name, entry] : by_name_) {
      bindings.emplace(name, entry->leaf->matrix());
    }
  }
  const ParseResult parsed = ParseProgram(source, bindings);
  if (!parsed.ok()) {
    return Status::InvalidArgument("parse error: " + parsed.error);
  }
  return Execute(parsed.expr, request);
}

std::vector<StatusOr<EstimateResult>> EstimationService::EstimateBatch(
    const std::vector<ExprPtr>& roots, const RequestContext* request) {
  const int64_t n = static_cast<int64_t>(roots.size());
  batch_queries_.fetch_add(n, std::memory_order_relaxed);
  std::vector<StatusOr<EstimateResult>> results(
      roots.size(), StatusOr<EstimateResult>(
                        Status::Internal("batch entry not computed")));
  // Grain-1 chunking over-decomposes the batch (up to 4 chunks per worker)
  // so one slow query does not serialize the tail; the helping waiter in
  // ParallelFor keeps nested parallel kernels on the same pool deadlock-free.
  // Per-worker scratch (Eq. 11/15 staging, density-combine partials) is
  // reused across the batch through ScratchPool::Global(), which the
  // estimator/propagation kernels lease from internally — concurrent batch
  // workers therefore allocate at most one arena each, not one per query.
  pool_.ParallelFor(0, n, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      results[static_cast<size_t>(i)] =
          Estimate(roots[static_cast<size_t>(i)], request);
    }
  });
  return results;
}

ServiceStats EstimationService::stats() const {
  ServiceStats s;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    s.registered_names = static_cast<int64_t>(by_name_.size());
    s.registered_sketches = static_cast<int64_t>(by_fp_.size());
  }
  s.register_dedup_hits = register_dedup_hits_.load(std::memory_order_relaxed);
  s.catalog_hits = catalog_hits_.load(std::memory_order_relaxed);
  s.catalog_misses = catalog_misses_.load(std::memory_order_relaxed);
  s.estimates = estimates_.load(std::memory_order_relaxed);
  s.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  s.fallback_estimates = fallback_estimates_.load(std::memory_order_relaxed);
  s.failed_estimates = failed_estimates_.load(std::memory_order_relaxed);
  s.executions = executions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(exec_mu_);
    s.guided = guided_stats_;
  }
  s.memo = memo_.stats();
  return s;
}

}  // namespace mnc
