#include "mnc/service/estimation_service.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>
#include <utility>

#include "mnc/estimators/fallback_estimator.h"
#include "mnc/ingest/stream_sketch.h"
#include "mnc/ir/evaluator.h"
#include "mnc/ir/sketch_propagator.h"
#include "mnc/lang/parser.h"
#include "mnc/tuning/machine_profile.h"
#include "mnc/util/fail_point.h"
#include "mnc/util/random.h"

namespace mnc {

namespace {

// Fail point poisoning sketch construction (RegisterMatrix and on-the-fly
// leaf sketching inside queries).
constexpr char kSketchBuildFailPoint[] = "service.sketch_build";
// Fail point corrupting the sparsity stored with a memo entry; the cache's
// sanity check drops such entries on the next lookup.
constexpr char kMemoPoisonFailPoint[] = "service.memo_poison";
// Fail point breaking catalog sketch reads: a registered leaf behaves as if
// its cataloged sketch were unreadable, failing the MNC tier for the query.
// This is the knob that lets the serving tier demonstrate degraded-but-
// served responses for expressions whose leaves are all registered (the
// common case over the wire), where sketch_build never fires.
constexpr char kCatalogReadFailPoint[] = "service.catalog_read";

}  // namespace

namespace {

// Attaches the instance profile to the parallel config so every sketch
// build / estimate / propagation the service runs dispatches through the
// calibrated crossovers (the options struct keeps the shared_ptr alive).
EstimationServiceOptions WithProfileAttached(EstimationServiceOptions o) {
  if (o.profile != nullptr) o.parallel.profile = o.profile.get();
  return o;
}

}  // namespace

EstimationService::EstimationService(EstimationServiceOptions options)
    : options_(WithProfileAttached(std::move(options))),
      memo_(options_.memo_budget_bytes),
      plan_cache_(options_.plan_cache_budget_bytes),
      packed_(options_.packed_operand_budget_bytes),
      pool_(options_.num_threads) {
  if (options_.catalog_resident_budget_bytes > 0 &&
      !options_.spill_dir.empty()) {
    auto store = ingest::SpillStore::Open(options_.spill_dir);
    if (store.ok()) {
      spill_ = std::make_unique<ingest::SpillStore>(std::move(store.value()));
    }
    // An unopenable spill directory disables the tier (budget unenforced)
    // rather than failing construction: the service still serves, it just
    // cannot bound resident sketch bytes.
  }
}

LeafFingerprintFn EstimationService::MakeResolver() const {
  // Per-query storage-key cache: one query's hasher, equality checks, and
  // memo lookups may all ask for the same leaf's fingerprint.
  auto cache = std::make_shared<std::unordered_map<const void*, uint64_t>>();
  return [this, cache](const ExprNode& leaf) -> uint64_t {
    // Sketch-only leaves (streaming registrations) carry their catalog
    // fingerprint; there is no storage to key on.
    if (!leaf.has_matrix()) return leaf.leaf_fingerprint();
    const void* key = leaf.matrix().storage_key();
    if (auto it = cache->find(key); it != cache->end()) return it->second;
    uint64_t fp = 0;
    bool found = false;
    {
      std::shared_lock<std::shared_mutex> lock(catalog_mu_);
      if (auto it = storage_fp_.find(key); it != storage_fp_.end()) {
        fp = it->second;
        found = true;
      }
    }
    if (!found) fp = MatrixFingerprint(leaf.matrix());
    cache->emplace(key, fp);
    return fp;
  };
}

StatusOr<ExprPtr> EstimationService::RegisterMatrix(const std::string& name,
                                                    const Matrix& m) {
  const uint64_t fp = MatrixFingerprint(m);

  std::shared_ptr<CatalogEntry> entry;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    if (auto it = by_fp_.find(fp); it != by_fp_.end()) entry = it->second;
  }

  std::shared_ptr<CatalogEntry> fresh;
  if (entry == nullptr) {
    if (MncFailPointArmed(kSketchBuildFailPoint)) {
      return Status::Unavailable("fail point " +
                                 std::string(kSketchBuildFailPoint) +
                                 ": sketch construction failed")
          .WithContext("register '" + name + "'");
    }
    auto built = std::make_shared<CatalogEntry>();
    built->first_name = name;
    built->fingerprint = fp;
    built->leaf = ExprNode::Leaf(m, name);
    built->sketch = std::make_shared<const MncSketch>(
        MncSketch::FromMatrix(m, options_.parallel, &pool_));
    built->sketch_bytes = built->sketch->MemoryBytes();
    fresh = std::move(built);
  }

  std::shared_ptr<const MncSketch> pack_sketch;
  {
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    if (auto it = by_fp_.find(fp); it != by_fp_.end()) {
      // Found first time around, or a racing registration beat us.
      entry = it->second;
      register_dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      entry = fresh;
      by_fp_.emplace(fp, entry);
      resident_bytes_ += entry->sketch_bytes;
    }
    by_name_[name] = entry;
    // Only the entry's own leaf pins its storage; a deduplicated caller
    // matrix may be freed after this call, so its storage key must not be
    // remembered (the address could be recycled by an unrelated matrix).
    storage_fp_[entry->leaf->matrix().storage_key()] = entry->fingerprint;
    TouchEntry(*entry);
    EnforceCatalogBudgetLocked(entry.get());
    pack_sketch = entry->sketch;  // null when already spilled again
  }
  // Re-registration under this fingerprint is an invalidation edge:
  // dependent plans are dropped (conservative refresh — the content is
  // byte-equal, but the contract keeps every registration event airtight)
  // and the packed analysis is rebuilt from the current sketch.
  plan_cache_.InvalidateFingerprint(fp);
  if (pack_sketch != nullptr) {
    packed_.BuildAndInsert(fp, entry->leaf->matrix(), *pack_sketch);
  }
  return entry->leaf;
}

StatusOr<ExprPtr> EstimationService::RegisterMatrixStreaming(
    const std::string& name, const std::string& path) {
  return RegisterMatrixStreaming(name, std::vector<std::string>{path},
                                 StreamRegisterOptions{});
}

StatusOr<ExprPtr> EstimationService::RegisterMatrixStreaming(
    const std::string& name, const std::vector<std::string>& paths,
    const StreamRegisterOptions& opts) {
  if (paths.empty()) {
    return Status::InvalidArgument("streaming registration of '" + name +
                                   "' needs at least one path");
  }
  if (MncFailPointArmed(kSketchBuildFailPoint)) {
    return Status::Unavailable("fail point " +
                               std::string(kSketchBuildFailPoint) +
                               ": sketch construction failed")
        .WithContext("register-streaming '" + name + "'");
  }
  ingest::StreamSketchOptions sopts;
  sopts.chunk_entries = options_.ingest_chunk_entries;
  sopts.parallel = options_.parallel;
  sopts.pool = &pool_;

  StatusOr<MncSketch> sketch = Status::Internal("unreachable");
  if (paths.size() == 1) {
    auto src = ingest::OpenTripletSource(paths.front());
    if (!src.ok()) {
      return src.status().WithContext("register-streaming '" + name + "'");
    }
    sketch = ingest::BuildSketchStreaming(*src.value(), sopts);
  } else if (opts.multi == StreamRegisterOptions::MultiFile::kRBind) {
    sketch = ingest::BuildSketchFromRowShards(paths, sopts);
  } else {
    sketch = ingest::BuildSketchUnion(paths, sopts);
  }
  if (!sketch.ok()) {
    return sketch.status().WithContext("register-streaming '" + name + "'");
  }
  return RegisterSketch(name, std::move(sketch).value());
}

StatusOr<ExprPtr> EstimationService::RegisterSketch(const std::string& name,
                                                    MncSketch sketch) {
  const uint64_t fp = ingest::SketchFingerprint(sketch);
  auto fresh = std::make_shared<CatalogEntry>();
  fresh->first_name = name;
  fresh->fingerprint = fp;
  fresh->leaf = ExprNode::SketchLeaf(name, sketch.rows(), sketch.cols(), fp);
  fresh->streaming = true;
  fresh->sketch = std::make_shared<const MncSketch>(std::move(sketch));
  fresh->sketch_bytes = fresh->sketch->MemoryBytes();

  std::shared_ptr<CatalogEntry> entry;
  {
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    if (auto it = by_fp_.find(fp); it != by_fp_.end()) {
      entry = it->second;
      register_dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      // A dedup hit may fault a spilled entry back for free — the freshly
      // built sketch is the same content.
      if (entry->sketch == nullptr) {
        entry->sketch = fresh->sketch;
        resident_bytes_ += entry->sketch_bytes;
      }
    } else {
      entry = fresh;
      by_fp_.emplace(fp, entry);
      resident_bytes_ += entry->sketch_bytes;
    }
    by_name_[name] = entry;
    TouchEntry(*entry);
    EnforceCatalogBudgetLocked(entry.get());
  }
  streaming_registrations_.fetch_add(1, std::memory_order_relaxed);
  return entry->leaf;
}

ExprPtr EstimationService::LookupLeaf(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second->leaf : nullptr;
}

StatusOr<std::shared_ptr<const MncSketch>> EstimationService::LookupSketch(
    const std::string& name) {
  std::shared_ptr<CatalogEntry> entry;
  std::shared_ptr<const MncSketch> sketch;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      return Status::NotFound("no matrix registered under '" + name + "'");
    }
    entry = it->second;
    sketch = entry->sketch;
    TouchEntry(*entry);
  }
  if (sketch != nullptr) return sketch;
  return FaultBackSketch(entry);
}

void EstimationService::TouchEntry(CatalogEntry& entry) const {
  entry.last_use.store(use_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
}

void EstimationService::EnforceCatalogBudgetLocked(const CatalogEntry* keep) {
  if (spill_ == nullptr || options_.catalog_resident_budget_bytes <= 0) return;
  while (resident_bytes_ > options_.catalog_resident_budget_bytes) {
    // Linear LRU scan: the catalog holds one entry per registered matrix,
    // so evictions are rare and small next to the sketch IO they trigger.
    CatalogEntry* victim = nullptr;
    uint64_t victim_use = 0;
    for (auto& [fp, e] : by_fp_) {
      if (e->sketch == nullptr || e.get() == keep) continue;
      const uint64_t use = e->last_use.load(std::memory_order_relaxed);
      if (victim == nullptr || use < victim_use) {
        victim = e.get();
        victim_use = use;
      }
    }
    if (victim == nullptr) break;  // nothing evictable (keep may exceed alone)
    if (!victim->spilled) {
      const Status written = spill_->Write(victim->fingerprint, *victim->sketch);
      if (!written.ok()) {
        // Graceful: keep the sketch resident (over budget) rather than
        // dropping the only copy. The next enforcement retries.
        spill_write_failures_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      victim->spilled = true;
    }
    victim->sketch.reset();
    resident_bytes_ -= victim->sketch_bytes;
    catalog_spills_.fetch_add(1, std::memory_order_relaxed);
    // Spill eviction is an invalidation edge: plans and packed analysis
    // derived from the evicted sketch are dropped with it. (Lock order:
    // catalog_mu_ is held here; the plan/packed locks nest strictly inside
    // it, never the other way around.)
    plan_cache_.InvalidateFingerprint(victim->fingerprint);
    packed_.Erase(victim->fingerprint);
  }
}

StatusOr<std::shared_ptr<const MncSketch>> EstimationService::FaultBackSketch(
    const std::shared_ptr<CatalogEntry>& entry) {
  if (spill_ == nullptr) {
    return Status::Internal("sketch for '" + entry->first_name +
                            "' is missing with no spill tier configured");
  }
  // Segment IO happens outside the catalog lock; racing faulters may both
  // read the segment, but only the first installs (the other adopts it).
  StatusOr<MncSketch> read = spill_->Read(entry->fingerprint);
  if (read.ok()) {
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    if (entry->sketch == nullptr) {
      entry->sketch =
          std::make_shared<const MncSketch>(std::move(read).value());
      resident_bytes_ += entry->sketch_bytes;
      catalog_faults_.fetch_add(1, std::memory_order_relaxed);
      TouchEntry(*entry);
      // The segment stays on disk (entry->spilled remains true): re-evicting
      // this entry later is a free pointer drop.
      EnforceCatalogBudgetLocked(entry.get());
    }
    return entry->sketch;
  }
  spill_read_failures_.fetch_add(1, std::memory_order_relaxed);

  // Degraded path: a matrix-backed entry can rebuild its sketch from the
  // matrix it pins; the corrupt segment is dropped so the next eviction
  // rewrites it. Sketch-only entries have nothing to rebuild from.
  if (entry->leaf != nullptr && entry->leaf->has_matrix()) {
    if (MncFailPointArmed(kSketchBuildFailPoint)) {
      return Status::Unavailable(
          "fail point " + std::string(kSketchBuildFailPoint) +
          ": sketch reconstruction failed for '" + entry->first_name + "'")
          .WithContext(read.status().message());
    }
    auto rebuilt = std::make_shared<const MncSketch>(MncSketch::FromMatrix(
        entry->leaf->matrix(), options_.parallel, &pool_));
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    if (entry->sketch == nullptr) {
      entry->sketch = rebuilt;
      resident_bytes_ += entry->sketch_bytes;
      (void)spill_->Remove(entry->fingerprint);
      entry->spilled = false;
      TouchEntry(*entry);
      EnforceCatalogBudgetLocked(entry.get());
    }
    return entry->sketch;
  }
  return read.status().WithContext("sketch for '" + entry->first_name +
                                   "' is spilled and its segment is "
                                   "unreadable");
}

StatusOr<std::shared_ptr<const MncSketch>> EstimationService::ComputeSketch(
    const ExprPtr& node, QueryCtx& ctx) {
  // Cooperative deadline/cancellation boundary: one check per node keeps
  // the overhead negligible next to sketch builds and propagation, yet an
  // expired request stops before starting any further O(nnz) work.
  if (ctx.request != nullptr) {
    MNC_RETURN_IF_ERROR(ctx.request->Check("estimate"));
  }
  if (auto it = ctx.local.find(node.get()); it != ctx.local.end()) {
    return it->second;
  }

  std::shared_ptr<const MncSketch> sketch;
  if (node->is_leaf()) {
    const uint64_t fp = ctx.resolver(*node);
    std::shared_ptr<CatalogEntry> entry;
    {
      std::shared_lock<std::shared_mutex> lock(catalog_mu_);
      if (auto it = by_fp_.find(fp); it != by_fp_.end()) {
        entry = it->second;
        sketch = entry->sketch;
        TouchEntry(*entry);
      }
    }
    if (entry != nullptr && sketch == nullptr) {
      // Catalog hit on a spilled entry: fault the sketch back in from its
      // disk segment (or degrade — re-sketch / typed error — if that
      // fails). Counted as a hit either way: the catalog knew the leaf.
      auto faulted = FaultBackSketch(entry);
      if (!faulted.ok()) {
        catalog_hits_.fetch_add(1, std::memory_order_relaxed);
        return faulted.status();
      }
      sketch = std::move(faulted).value();
    }
    if (sketch != nullptr && MncFailPointArmed(kCatalogReadFailPoint)) {
      return Status::Unavailable(
          "fail point " + std::string(kCatalogReadFailPoint) +
          ": cataloged sketch unavailable for leaf '" + node->name() + "'");
    }
    if (sketch != nullptr) {
      catalog_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      catalog_misses_.fetch_add(1, std::memory_order_relaxed);
      // A sketch-only leaf that is not in this service's catalog cannot be
      // sketched on the fly — there is no matrix to read.
      if (!node->has_matrix()) {
        return Status::Unavailable(
            "sketch-only leaf '" + node->name() +
            "' is not in the catalog and has no backing matrix to sketch");
      }
      // Unregistered leaves are memoized like any sub-expression, so a
      // repeated ad-hoc query still skips the O(nnz) sketch build.
      const uint64_t h = ctx.hasher.Hash(node);
      if (auto hit = memo_.Lookup(h, node, ctx.resolver)) {
        sketch = hit->sketch;
      } else {
        if (MncFailPointArmed(kSketchBuildFailPoint)) {
          return Status::Unavailable(
              "fail point " + std::string(kSketchBuildFailPoint) +
              ": sketch construction failed for leaf '" + node->name() + "'");
        }
        sketch = std::make_shared<const MncSketch>(
            MncSketch::FromMatrix(node->matrix(), options_.parallel, &pool_));
        InsertMemo(h, node, sketch);
      }
    }
  } else {
    const uint64_t h = ctx.hasher.Hash(node);
    if (auto hit = memo_.Lookup(h, node, ctx.resolver)) {
      sketch = hit->sketch;
    } else {
      MNC_ASSIGN_OR_RETURN(std::shared_ptr<const MncSketch> left,
                           ComputeSketch(node->left(), ctx));
      std::shared_ptr<const MncSketch> right;
      if (node->right() != nullptr) {
        MNC_ASSIGN_OR_RETURN(right, ComputeSketch(node->right(), ctx));
      }
      sketch = std::make_shared<const MncSketch>(
          PropagateNode(node, h, *left, right.get()));
      InsertMemo(h, node, sketch);
    }
  }

  ctx.local.emplace(node.get(), sketch);
  return sketch;
}

void EstimationService::InsertMemo(
    uint64_t hash, const ExprPtr& canonical,
    const std::shared_ptr<const MncSketch>& sketch) {
  SketchMemoCache::Entry entry;
  entry.canonical = canonical;
  entry.sketch = sketch;
  entry.sparsity = sketch->Sparsity();
  if (MncFailPointArmed(kMemoPoisonFailPoint)) {
    entry.sparsity = std::nan("");
  }
  memo_.Insert(hash, std::move(entry));
}

MncSketch EstimationService::PropagateNode(const ExprPtr& node,
                                           uint64_t node_hash,
                                           const MncSketch& left,
                                           const MncSketch* right) const {
  // Seeding from the structural hash makes propagation a pure function of
  // the canonical node: repeated/concurrent queries agree with each other
  // and with whatever the memo table holds. The parallel overloads keep the
  // same property: the seed (not an Rng) crosses the API boundary and each
  // block derives its own stream from it, so no PRNG state is ever shared
  // between tasks.
  return PropagateNodeSketch(*node, left, right, node_hash ^ options_.seed,
                             options_.rounding, options_.parallel, &pool_);
}

StatusOr<EstimateResult> EstimationService::Estimate(
    const ExprPtr& root, const RequestContext* request) {
  estimates_.fetch_add(1, std::memory_order_relaxed);
  if (root == nullptr) {
    failed_estimates_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("Estimate called with a null expression");
  }
  if (request != nullptr) {
    Status bound = request->Check("estimate");
    if (!bound.ok()) {
      failed_estimates_.fetch_add(1, std::memory_order_relaxed);
      return bound;
    }
  }

  QueryCtx ctx(MakeResolver(), request);
  const ExprPtr canonical = CanonicalizeExpr(root, ctx.resolver);

  EstimateResult result;
  result.rows = canonical->rows();
  result.cols = canonical->cols();

  if (canonical->is_leaf()) {
    auto sketch = ComputeSketch(canonical, ctx);
    if (!sketch.ok()) return EstimateDegraded(canonical, sketch.status());
    result.sparsity = (*sketch)->Sparsity();
    result.served_by = "mnc";
    return result;
  }

  // Root fast path: a repeated query is answered from the memo entry's
  // stored estimate without touching any sketch.
  const uint64_t root_hash = ctx.hasher.Hash(canonical);
  if (auto hit = memo_.Lookup(root_hash, canonical, ctx.resolver)) {
    result.sparsity = hit->sparsity;
    result.memo_hit = true;
    result.served_by = "memo";
    return result;
  }

  auto left = ComputeSketch(canonical->left(), ctx);
  if (!left.ok()) return EstimateDegraded(canonical, left.status());
  std::shared_ptr<const MncSketch> right;
  if (canonical->right() != nullptr) {
    auto r = ComputeSketch(canonical->right(), ctx);
    if (!r.ok()) return EstimateDegraded(canonical, r.status());
    right = *r;
  }

  auto root_sketch = std::make_shared<const MncSketch>(
      PropagateNode(canonical, root_hash, **left, right.get()));
  result.sparsity = root_sketch->Sparsity();
  result.served_by = "mnc";
  InsertMemo(root_hash, canonical, root_sketch);
  return result;
}

StatusOr<EstimateResult> EstimationService::EstimateDegraded(
    const ExprPtr& canonical, const Status& cause) {
  // A request that ran out of time must not be "rescued" by the fallback
  // chain: serving a late answer defeats the deadline, and the cheap tiers
  // would still add latency. The typed error propagates as-is.
  if (cause.code() == StatusCode::kDeadlineExceeded) {
    failed_estimates_.fetch_add(1, std::memory_order_relaxed);
    return cause;
  }
  if (options_.enable_fallback) {
    // Per-call estimator: FallbackEstimator carries mutable per-request
    // state, so sharing one across threads would race. Degraded results are
    // deliberately NOT memoized — once the fault clears, the precise path
    // repopulates the cache.
    FallbackEstimator fallback;
    SketchPropagator propagator(&fallback);
    const std::optional<double> sparsity =
        propagator.EstimateSparsity(canonical);
    if (sparsity.has_value() && std::isfinite(*sparsity) && *sparsity >= 0.0 &&
        *sparsity <= 1.0) {
      fallback_estimates_.fetch_add(1, std::memory_order_relaxed);
      EstimateResult result;
      result.sparsity = *sparsity;
      result.rows = canonical->rows();
      result.cols = canonical->cols();
      result.served_by = fallback.last_serving_tier().empty()
                             ? "fallback"
                             : fallback.last_serving_tier();
      return result;
    }
  }
  failed_estimates_.fetch_add(1, std::memory_order_relaxed);
  return cause.WithContext(options_.enable_fallback
                               ? "MNC path failed and fallback was unusable"
                               : "MNC path failed and fallback is disabled");
}

StatusOr<EstimateResult> EstimationService::EstimateSource(
    const std::string& source, const RequestContext* request) {
  // Catalog leaves (matrix-backed and sketch-only alike) resolve as
  // pre-built nodes, so repeated sources share DAG identity with the
  // catalog and with each other.
  std::map<std::string, ExprPtr> leaves;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    for (const auto& [name, entry] : by_name_) {
      leaves.emplace(name, entry->leaf);
    }
  }
  const ParseResult parsed = ParseProgram(source, {}, leaves);
  if (!parsed.ok()) {
    return Status::InvalidArgument("parse error: " + parsed.error);
  }
  return Estimate(parsed.expr, request);
}

const void* EstimationService::ProfileToken() const {
  if (options_.profile != nullptr) return options_.profile.get();
  return tuning::ActiveProfileRaw();
}

std::function<std::shared_ptr<const Matrix>(const ExprNode&)>
EstimationService::MakeTransposeHook() {
  if (!packed_.enabled()) return nullptr;
  return [this](const ExprNode& leaf) -> std::shared_ptr<const Matrix> {
    if (!leaf.has_matrix()) return nullptr;
    uint64_t fp = 0;
    {
      std::shared_lock<std::shared_mutex> lock(catalog_mu_);
      auto it = storage_fp_.find(leaf.matrix().storage_key());
      if (it == storage_fp_.end()) return nullptr;
      fp = it->second;
    }
    return packed_.TransposeFor(fp, leaf.matrix());
  };
}

std::function<std::shared_ptr<const MncSketch>(const ExprNode&)>
EstimationService::MakeLeafSketchHook() {
  // Leaves whose storage is cataloged reuse their registered sketches;
  // ad-hoc leaves return nullptr and are sketched by the evaluator.
  return [this](const ExprNode& leaf) -> std::shared_ptr<const MncSketch> {
    if (!leaf.has_matrix()) return nullptr;  // unreachable past ValidateDag
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    if (auto it = storage_fp_.find(leaf.matrix().storage_key());
        it != storage_fp_.end()) {
      if (auto fit = by_fp_.find(it->second); fit != by_fp_.end()) {
        return fit->second->sketch;
      }
    }
    return nullptr;
  };
}

void EstimationService::RecordPlan(
    uint64_t key, const ExprPtr& root, const LeafFingerprintFn& resolver,
    const void* profile_token,
    std::unordered_map<const ExprNode*, ProductPlanEntry> products,
    const Evaluator& evaluator) {
  auto plan = std::make_shared<CachedPlan>();
  plan->key = key;
  plan->root = root;
  // Second-chance index entry: the canonical form identifies this plan for
  // every equivalent parenthesization of the expression.
  plan->canonical_root = CanonicalizeExpr(root, resolver);
  {
    ExprHasher canonical_hasher(resolver);
    plan->canonical_key = canonical_hasher.Hash(plan->canonical_root);
  }
  plan->profile_token = profile_token;
  plan->products = std::move(products);
  // One DAG walk collects the operand fingerprints (invalidation index)
  // and the propagated intermediate summaries (diagnostics).
  std::vector<const ExprNode*> stack = {root.get()};
  std::unordered_map<const ExprNode*, bool> seen;
  std::unordered_set<uint64_t> fps;
  while (!stack.empty()) {
    const ExprNode* node = stack.back();
    stack.pop_back();
    if (node == nullptr || !seen.emplace(node, true).second) continue;
    if (node->is_leaf()) {
      fps.insert(resolver(*node));
      continue;
    }
    if (const MncSketch* sk = evaluator.NodeSketch(node)) {
      plan->intermediates.push_back(
          PlanNodeSummary{sk->rows(), sk->cols(), sk->Sparsity()});
    }
    stack.push_back(node->left().get());
    if (node->right() != nullptr) stack.push_back(node->right().get());
  }
  plan->operand_fps.assign(fps.begin(), fps.end());
  std::sort(plan->operand_fps.begin(), plan->operand_fps.end());
  plan_cache_.Insert(std::move(plan));
}

StatusOr<Matrix> EstimationService::Execute(const ExprPtr& root,
                                            const RequestContext* request) {
  executions_.fetch_add(1, std::memory_order_relaxed);
  if (root == nullptr) {
    return Status::InvalidArgument("Execute called with a null expression");
  }
  if (request != nullptr) {
    MNC_RETURN_IF_ERROR(request->Check("execute"));
  }

  // Warm path: a structurally-equal query over the same operand contents
  // replays the recorded plan — no canonicalization, no sketch resolution
  // or propagation, no per-row estimation; products dispatch straight into
  // the kernels with their recorded decisions, bit-identical to the cold
  // guided run that recorded them.
  const bool plans_active = options_.guided_exec && plan_cache_.enabled();
  LeafFingerprintFn resolver;
  uint64_t plan_key = 0;
  const void* profile_token = nullptr;
  if (plans_active) {
    resolver = MakeResolver();
    ExprHasher hasher(resolver);
    plan_key = hasher.Hash(root);
    profile_token = ProfileToken();
    // Canonical form computed only when the raw key misses: a different
    // spelling of a recorded expression still finds its plan.
    const PlanCache::CanonicalFn canonical =
        [&root, &resolver]() -> std::pair<uint64_t, ExprPtr> {
      const ExprPtr croot = CanonicalizeExpr(root, resolver);
      ExprHasher canonical_hasher(resolver);
      return {canonical_hasher.Hash(croot), croot};
    };
    if (std::shared_ptr<const CachedPlan> plan = plan_cache_.Lookup(
            plan_key, root, resolver, profile_token, canonical)) {
      EvaluatorOptions opts;
      opts.seed = options_.seed;
      opts.rounding = options_.rounding;
      opts.profile = options_.profile;
      opts.plan_lookup =
          [plan](const ExprNode* node) -> const ProductPlanEntry* {
        auto it = plan->products.find(node);
        return it != plan->products.end() ? &it->second : nullptr;
      };
      opts.cached_transpose = MakeTransposeHook();
      // Replay executes the plan's own pinned DAG: its node identities key
      // the recorded entries and its leaves pin the operand storage.
      Evaluator evaluator(&pool_, std::move(opts));
      StatusOr<Matrix> result = evaluator.TryEvaluate(plan->root);
      {
        std::lock_guard<std::mutex> lock(exec_mu_);
        guided_stats_.MergeFrom(evaluator.guided_stats());
      }
      if (result.ok() && request != nullptr) {
        MNC_RETURN_IF_ERROR(request->Check("execute"));
      }
      return result;
    }
  }

  EvaluatorOptions opts;
  opts.guided = options_.guided_exec;
  opts.seed = options_.seed;
  opts.rounding = options_.rounding;
  opts.profile = options_.profile;
  if (options_.guided_exec) {
    opts.leaf_sketches = MakeLeafSketchHook();
  }
  opts.cached_transpose = MakeTransposeHook();
  std::unordered_map<const ExprNode*, ProductPlanEntry> recorded;
  if (plans_active) {
    opts.plan_record = [&recorded](const ExprNode* node,
                                   ProductPlanEntry entry) {
      recorded[node] = std::move(entry);
    };
  }
  // Per-call evaluator: its caches key on node identity, which is only
  // stable within one caller's DAG.
  Evaluator evaluator(&pool_, std::move(opts));
  StatusOr<Matrix> result = evaluator.TryEvaluate(root);
  if (options_.guided_exec) {
    std::lock_guard<std::mutex> lock(exec_mu_);
    guided_stats_.MergeFrom(evaluator.guided_stats());
  }
  // Evaluation is not interrupted mid-kernel, but a request whose deadline
  // passed while executing reports the typed error rather than handing a
  // late result to a caller that already gave up on it.
  if (result.ok() && request != nullptr) {
    MNC_RETURN_IF_ERROR(request->Check("execute"));
  }
  // Only fully successful cold guided executions are planned: failed and
  // deadline-exceeded runs returned above, so nothing degraded or late is
  // ever replayed.
  if (plans_active && result.ok()) {
    RecordPlan(plan_key, root, resolver, profile_token, std::move(recorded),
               evaluator);
  }
  return result;
}

void EstimationService::ClearCatalog() {
  {
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    by_fp_.clear();
    by_name_.clear();
    storage_fp_.clear();
    resident_bytes_ = 0;
  }
  packed_.Clear();
  plan_cache_.Clear();
}

StatusOr<Matrix> EstimationService::ExecuteSource(const std::string& source,
                                                  const RequestContext* request) {
  // Sketch-only leaves parse fine here; Execute then fails with the typed
  // kFailedPrecondition from ValidateDag if the DAG actually uses one.
  std::map<std::string, ExprPtr> leaves;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    for (const auto& [name, entry] : by_name_) {
      leaves.emplace(name, entry->leaf);
    }
  }
  const ParseResult parsed = ParseProgram(source, {}, leaves);
  if (!parsed.ok()) {
    return Status::InvalidArgument("parse error: " + parsed.error);
  }
  return Execute(parsed.expr, request);
}

std::vector<StatusOr<EstimateResult>> EstimationService::EstimateBatch(
    const std::vector<ExprPtr>& roots, const RequestContext* request) {
  const int64_t n = static_cast<int64_t>(roots.size());
  batch_queries_.fetch_add(n, std::memory_order_relaxed);
  std::vector<StatusOr<EstimateResult>> results(
      roots.size(), StatusOr<EstimateResult>(
                        Status::Internal("batch entry not computed")));
  // Grain-1 chunking over-decomposes the batch (up to 4 chunks per worker)
  // so one slow query does not serialize the tail; the helping waiter in
  // ParallelFor keeps nested parallel kernels on the same pool deadlock-free.
  // Per-worker scratch (Eq. 11/15 staging, density-combine partials) is
  // reused across the batch through ScratchPool::Global(), which the
  // estimator/propagation kernels lease from internally — concurrent batch
  // workers therefore allocate at most one arena each, not one per query.
  pool_.ParallelFor(0, n, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      results[static_cast<size_t>(i)] =
          Estimate(roots[static_cast<size_t>(i)], request);
    }
  });
  return results;
}

std::vector<StatusOr<EstimateResult>> EstimationService::EstimateBatch(
    const std::vector<ExprPtr>& roots,
    const std::vector<const RequestContext*>& ctxs) {
  const int64_t n = static_cast<int64_t>(roots.size());
  batch_queries_.fetch_add(n, std::memory_order_relaxed);
  std::vector<StatusOr<EstimateResult>> results(
      roots.size(), StatusOr<EstimateResult>(
                        Status::Internal("batch entry not computed")));
  pool_.ParallelFor(0, n, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const size_t idx = static_cast<size_t>(i);
      results[idx] = Estimate(roots[idx],
                              idx < ctxs.size() ? ctxs[idx] : nullptr);
    }
  });
  return results;
}

std::vector<StatusOr<EstimateResult>> EstimationService::EstimateSourceBatch(
    const std::vector<std::string>& sources,
    const std::vector<const RequestContext*>& ctxs) {
  std::vector<StatusOr<EstimateResult>> results(
      sources.size(), StatusOr<EstimateResult>(
                          Status::Internal("batch entry not computed")));
  if (sources.empty()) return results;
  batch_queries_.fetch_add(static_cast<int64_t>(sources.size()),
                           std::memory_order_relaxed);

  // One catalog snapshot serves every parse in the batch.
  std::map<std::string, ExprPtr> leaves;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    for (const auto& [name, entry] : by_name_) {
      leaves.emplace(name, entry->leaf);
    }
  }

  const auto member_ctx = [&ctxs](size_t i) -> const RequestContext* {
    return i < ctxs.size() ? ctxs[i] : nullptr;
  };

  // Identical source texts collapse into one group — one parse, one
  // estimate — with results fanned back out per member below.
  struct Group {
    std::vector<size_t> members;
    ExprPtr root;  // null when the parse failed
    Status parse_status = Status::Ok();
    // Bound for the shared computation. Multi-member groups get a merged
    // context: the laxest member's deadline and NO cancel token, so one
    // member's closed connection never cancels work its neighbors share.
    RequestContext merged;
    const RequestContext* ctx = nullptr;
  };
  std::vector<Group> groups;
  {
    std::unordered_map<std::string, size_t> by_source;
    for (size_t i = 0; i < sources.size(); ++i) {
      const auto [it, fresh] = by_source.emplace(sources[i], groups.size());
      if (fresh) groups.emplace_back();
      groups[it->second].members.push_back(i);
    }
  }

  for (Group& group : groups) {
    const ParseResult parsed =
        ParseProgram(sources[group.members.front()], {}, leaves);
    if (!parsed.ok()) {
      group.parse_status =
          Status::InvalidArgument("parse error: " + parsed.error);
      continue;
    }
    group.root = parsed.expr;
    if (group.members.size() == 1) {
      group.ctx = member_ctx(group.members.front());
      continue;
    }
    bool unbounded = false;
    int64_t laxest_ms = 0;
    for (size_t i : group.members) {
      const RequestContext* ctx = member_ctx(i);
      if (ctx == nullptr || !ctx->has_deadline()) {
        unbounded = true;
        break;
      }
      laxest_ms = std::max(laxest_ms, ctx->RemainingMillis().value_or(0));
    }
    if (!unbounded) {
      group.merged = RequestContext::WithDeadlineAfterMillis(laxest_ms);
      group.ctx = &group.merged;
    }
  }

  std::vector<StatusOr<EstimateResult>> shared(
      groups.size(), StatusOr<EstimateResult>(
                         Status::Internal("batch group not computed")));
  const int64_t n = static_cast<int64_t>(groups.size());
  pool_.ParallelFor(0, n, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t g = begin; g < end; ++g) {
      const size_t idx = static_cast<size_t>(g);
      if (groups[idx].root != nullptr) {
        shared[idx] = Estimate(groups[idx].root, groups[idx].ctx);
      }
    }
  });

  // Fan out, re-applying each member's own bound: sharing a computation
  // must not extend a member's deadline or outlive its cancellation.
  for (size_t g = 0; g < groups.size(); ++g) {
    const Group& group = groups[g];
    for (size_t i : group.members) {
      if (group.root == nullptr) {
        results[i] = group.parse_status;
        continue;
      }
      if (const RequestContext* ctx = member_ctx(i); ctx != nullptr) {
        const Status bound = ctx->Check("estimate");
        if (!bound.ok()) {
          if (group.members.size() > 1) {
            // Singleton groups already counted inside Estimate.
            failed_estimates_.fetch_add(1, std::memory_order_relaxed);
          }
          results[i] = bound;
          continue;
        }
      }
      results[i] = shared[g];
    }
  }
  return results;
}

ServiceStats EstimationService::stats() const {
  ServiceStats s;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    s.registered_names = static_cast<int64_t>(by_name_.size());
    s.registered_sketches = static_cast<int64_t>(by_fp_.size());
    s.resident_bytes = resident_bytes_;
    for (const auto& [fp, entry] : by_fp_) {
      if (entry->sketch == nullptr) ++s.spilled_sketches;
    }
  }
  s.streaming_registrations =
      streaming_registrations_.load(std::memory_order_relaxed);
  s.catalog_spills = catalog_spills_.load(std::memory_order_relaxed);
  s.catalog_faults = catalog_faults_.load(std::memory_order_relaxed);
  s.spill_read_failures =
      spill_read_failures_.load(std::memory_order_relaxed);
  s.spill_write_failures =
      spill_write_failures_.load(std::memory_order_relaxed);
  s.register_dedup_hits = register_dedup_hits_.load(std::memory_order_relaxed);
  s.catalog_hits = catalog_hits_.load(std::memory_order_relaxed);
  s.catalog_misses = catalog_misses_.load(std::memory_order_relaxed);
  s.estimates = estimates_.load(std::memory_order_relaxed);
  s.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  s.fallback_estimates = fallback_estimates_.load(std::memory_order_relaxed);
  s.failed_estimates = failed_estimates_.load(std::memory_order_relaxed);
  s.executions = executions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(exec_mu_);
    s.guided = guided_stats_;
  }
  s.memo = memo_.stats();
  const PlanCacheStats plans = plan_cache_.stats();
  s.plan_hits = plans.hits;
  s.plan_canonical_hits = plans.canonical_hits;
  s.plan_misses = plans.misses;
  s.plan_invalidations = plans.invalidations;
  s.plan_entries = plans.entries;
  s.plan_bytes = plans.bytes;
  const PackedStoreStats packed = packed_.stats();
  s.packed_operands = packed.entries;
  s.packed_operand_bytes = packed.bytes;
  return s;
}

}  // namespace mnc
