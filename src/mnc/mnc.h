// Umbrella header for the MNC library.
//
// MNC (Matrix Non-zero Count) is a count-based matrix synopsis for
// structure-exploiting sparsity estimation of matrix expressions, as
// published in:
//
//   Johanna Sommer, Matthias Boehm, Alexandre V. Evfimievski, Berthold
//   Reinwald, Peter J. Haas. "MNC: Structure-Exploiting Sparsity Estimation
//   for Matrix Expressions." SIGMOD 2019.
//
// Typical usage:
//
//   mnc::Rng rng(42);
//   mnc::CsrMatrix a = mnc::GenerateUniformSparse(1000, 1000, 0.01, rng);
//   mnc::CsrMatrix b = mnc::GenerateUniformSparse(1000, 1000, 0.01, rng);
//   mnc::MncSketch ha = mnc::MncSketch::FromCsr(a);
//   mnc::MncSketch hb = mnc::MncSketch::FromCsr(b);
//   double s = mnc::EstimateProductSparsity(ha, hb);
//
// See README.md for the architecture overview and examples/ for runnable
// end-to-end programs.

#ifndef MNC_MNC_H_
#define MNC_MNC_H_

#include "mnc/core/mnc_estimator.h"
#include "mnc/core/mnc_propagation.h"
#include "mnc/core/mnc_sketch.h"
#include "mnc/core/mnc_sketch_io.h"
#include "mnc/core/row_estimates.h"
#include "mnc/estimators/adaptive_density_map.h"
#include "mnc/estimators/bitset_estimator.h"
#include "mnc/estimators/density_map_estimator.h"
#include "mnc/estimators/fallback_estimator.h"
#include "mnc/estimators/hash_estimator.h"
#include "mnc/estimators/layered_graph_estimator.h"
#include "mnc/estimators/meta_estimator.h"
#include "mnc/estimators/mnc_adapter.h"
#include "mnc/estimators/sampling_estimator.h"
#include "mnc/estimators/sparsity_estimator.h"
#include "mnc/ingest/spill_store.h"
#include "mnc/ingest/stream_sketch.h"
#include "mnc/ingest/triplet_source.h"
#include "mnc/ir/evaluator.h"
#include "mnc/lang/parser.h"
#include "mnc/ir/expr.h"
#include "mnc/ir/expr_hash.h"
#include "mnc/ir/sketch_propagator.h"
#include "mnc/serve/client.h"
#include "mnc/serve/command.h"
#include "mnc/serve/frame.h"
#include "mnc/serve/server.h"
#include "mnc/service/estimation_service.h"
#include "mnc/service/sketch_cache.h"
#include "mnc/matrix/checked_ops.h"
#include "mnc/matrix/coo_matrix.h"
#include "mnc/matrix/csc_matrix.h"
#include "mnc/matrix/csr_matrix.h"
#include "mnc/matrix/dense_matrix.h"
#include "mnc/matrix/generate.h"
#include "mnc/matrix/io.h"
#include "mnc/matrix/matrix.h"
#include "mnc/matrix/mm_header.h"
#include "mnc/matrix/ops_ewise.h"
#include "mnc/matrix/ops_product.h"
#include "mnc/matrix/ops_reorg.h"
#include "mnc/optimizer/mmchain.h"
#include "mnc/optimizer/rewrites.h"
#include "mnc/sparsest/datasets.h"
#include "mnc/sparsest/metrics.h"
#include "mnc/sparsest/usecases.h"
#include "mnc/tuning/calibrate.h"
#include "mnc/tuning/machine_profile.h"
#include "mnc/util/crc32.h"
#include "mnc/util/deadline.h"
#include "mnc/util/fail_point.h"
#include "mnc/util/random.h"
#include "mnc/util/status.h"
#include "mnc/util/stopwatch.h"
#include "mnc/util/thread_pool.h"

#endif  // MNC_MNC_H_
