#include "mnc/tuning/calibrate.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "mnc/core/mnc_estimator.h"
#include "mnc/core/mnc_propagation.h"
#include "mnc/core/mnc_sketch.h"
#include "mnc/kernels/kernels.h"
#include "mnc/matrix/generate.h"
#include "mnc/matrix/ops_product.h"
#include "mnc/util/fail_point.h"
#include "mnc/util/random.h"
#include "mnc/util/stopwatch.h"
#include "mnc/util/thread_pool.h"

namespace mnc {
namespace tuning {

namespace {

// Defeats dead-code elimination of the measured kernels.
volatile double g_sink_f64 = 0.0;
volatile int64_t g_sink_i64 = 0;

// Median of `reps` timings of fn(), each averaging `iters` calls; ns/call.
double MedianNsPerCall(int reps, int64_t iters,
                       const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(std::max(1, reps)));
  fn();  // warm caches and page in inputs before the first sample
  for (int r = 0; r < std::max(1, reps); ++r) {
    Stopwatch sw;
    for (int64_t i = 0; i < iters; ++i) fn();
    samples.push_back(sw.ElapsedSeconds() * 1e9 /
                      static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Median of `reps` single-shot timings of fn(), in seconds.
double MedianSeconds(int reps, const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(std::max(1, reps)));
  for (int r = 0; r < std::max(1, reps); ++r) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Shared synthetic inputs for the kernel micro-benchmarks at one size.
struct KernelInputs {
  std::vector<int64_t> u, du, v, dv;
  std::vector<uint64_t> wa, wb, wdst;
  std::vector<double> out;

  explicit KernelInputs(int64_t n, uint64_t seed) {
    Rng rng(seed);
    u.resize(n); du.resize(n); v.resize(n); dv.resize(n);
    for (int64_t i = 0; i < n; ++i) {
      u[i] = rng.UniformInt(16);
      v[i] = rng.UniformInt(16);
      du[i] = rng.UniformInt(u[i] + 1);
      dv[i] = rng.UniformInt(v[i] + 1);
    }
    wa.resize(n); wb.resize(n); wdst.resize(n);
    for (int64_t i = 0; i < n; ++i) {
      wa[i] = rng.Next();
      wb[i] = rng.Next();
    }
    out.resize(n);
  }
};

// One invocation of kernel `id` from `table` over `in` (n elements/words).
void RunKernel(TunedKernel id, const kernels::KernelTable& table,
               KernelInputs& in) {
  const int64_t n = static_cast<int64_t>(in.u.size());
  switch (id) {
    case TunedKernel::kDotCounts:
      g_sink_f64 = table.dot_counts(in.u.data(), in.v.data(), n);
      break;
    case TunedKernel::kDotCountsDiff:
      g_sink_f64 =
          table.dot_counts_diff(in.u.data(), in.du.data(), in.v.data(), n);
      break;
    case TunedKernel::kDensityCombine: {
      // Large p keeps most cells uncertain so the whole range is scanned.
      kernels::CombineAccum acc = table.density_combine(
          in.u.data(), in.du.data(), in.v.data(), in.dv.data(), n, 1e12);
      g_sink_f64 = acc.log_zero_prob;
      break;
    }
    case TunedKernel::kScaleCounts:
      table.scale_counts(in.u.data(), n, 0.37, in.out.data());
      g_sink_f64 = in.out[0];
      break;
    case TunedKernel::kEwiseMultEst:
      table.ewise_mult_est(in.u.data(), in.v.data(), n, 1e-3, in.out.data());
      g_sink_f64 = in.out[0];
      break;
    case TunedKernel::kEwiseAddEst:
      table.ewise_add_est(in.u.data(), in.v.data(), n, 1e-3, 1e12,
                          in.out.data());
      g_sink_f64 = in.out[0];
      break;
    case TunedKernel::kOrInto:
      table.or_into(in.wdst.data(), in.wa.data(), n);
      g_sink_i64 = static_cast<int64_t>(in.wdst[0]);
      break;
    case TunedKernel::kOrWords:
      table.or_words(in.wdst.data(), in.wa.data(), in.wb.data(), n);
      g_sink_i64 = static_cast<int64_t>(in.wdst[0]);
      break;
    case TunedKernel::kAndWords:
      table.and_words(in.wdst.data(), in.wa.data(), in.wb.data(), n);
      g_sink_i64 = static_cast<int64_t>(in.wdst[0]);
      break;
    case TunedKernel::kPopcountWords:
      g_sink_i64 = table.popcount_words(in.wa.data(), n);
      break;
    case TunedKernel::kAndPopcountWords:
      g_sink_i64 = table.and_popcount_words(in.wa.data(), in.wb.data(), n);
      break;
  }
}

// Piecewise-linear crossover fit: the work size from which the parallel
// timing beats sequential at every subsequent ladder point. Interpolates
// the zero of (par - seq) between the last losing and first winning point;
// 0 when parallel wins everywhere, kNeverParallel when it never does.
int64_t FitCrossover(const std::vector<int64_t>& work,
                     const std::vector<double>& seq,
                     const std::vector<double>& par) {
  const size_t n = work.size();
  size_t first_win = n;
  for (size_t i = n; i-- > 0;) {
    if (par[i] < seq[i]) {
      first_win = i;
    } else {
      break;  // a loss above this point: parallel only wins after it
    }
  }
  if (first_win == n) return kNeverParallel;
  if (first_win == 0) return 0;
  const size_t i = first_win;
  const double g0 = par[i - 1] - seq[i - 1];  // > 0 (parallel losing)
  const double g1 = par[i] - seq[i];          // < 0 (parallel winning)
  const double t = g0 / (g0 - g1);
  const double w = static_cast<double>(work[i - 1]) +
                   t * static_cast<double>(work[i] - work[i - 1]);
  return std::max<int64_t>(1, static_cast<int64_t>(w));
}

}  // namespace

StatusOr<MachineProfile> Calibrate(const CalibrationOptions& options) {
  if (MncFailPointArmed("tuning.measure")) {
    return Status::Internal(
        "calibration: fail point tuning.measure armed");
  }

  MachineProfile profile;
  const SimdLevel level = BestSupportedSimdLevel();
  profile.simd_level = level;

  // --- Per-kernel scalar vs SIMD verdicts --------------------------------
  const kernels::KernelTable& scalar = kernels::ScalarKernels();
  const kernels::KernelTable& simd = kernels::KernelsForLevel(level);
  const int64_t cache_n = std::max<int64_t>(64, options.kernel_cache_elems);
  const int64_t stream_n =
      std::max(cache_n, options.quick ? options.kernel_stream_elems / 16
                                      : options.kernel_stream_elems);
  KernelInputs cache_in(cache_n, MixSeed(options.seed, 1));
  KernelInputs stream_in(stream_n, MixSeed(options.seed, 2));
  const int64_t target = options.quick ? (int64_t{1} << 19) : (int64_t{1} << 22);
  const int64_t cache_iters = std::max<int64_t>(1, target / cache_n);
  const int64_t stream_iters = std::max<int64_t>(1, target / stream_n);

  for (int i = 0; i < kNumTunedKernels; ++i) {
    const TunedKernel id = static_cast<TunedKernel>(i);
    KernelCalib& k = profile.kernels[i];
    k.scalar_cache_ns = MedianNsPerCall(
        options.reps, cache_iters, [&] { RunKernel(id, scalar, cache_in); });
    k.scalar_stream_ns = MedianNsPerCall(
        options.reps, stream_iters, [&] { RunKernel(id, scalar, stream_in); });
    if (level == SimdLevel::kScalar) {
      // No SIMD table compiled in / supported: the verdict is vacuous.
      k.simd_cache_ns = k.scalar_cache_ns;
      k.simd_stream_ns = k.scalar_stream_ns;
      k.use_simd = true;
      continue;
    }
    k.simd_cache_ns = MedianNsPerCall(
        options.reps, cache_iters, [&] { RunKernel(id, simd, cache_in); });
    k.simd_stream_ns = MedianNsPerCall(
        options.reps, stream_iters, [&] { RunKernel(id, simd, stream_in); });
    // Geomean speedup across the two operating points; <= 1.0 means the
    // SIMD path does not pay for itself on this host (ISSUE: dot_counts and
    // or/and_words measure ~1.0x while popcount gets ~10x).
    const double speedup =
        std::sqrt((k.scalar_cache_ns / std::max(1e-9, k.simd_cache_ns)) *
                  (k.scalar_stream_ns / std::max(1e-9, k.simd_stream_ns)));
    k.use_simd = speedup > 1.0;
  }

  // --- Seq-vs-par stage crossovers ---------------------------------------
  ThreadPool pool(options.threads);
  const int threads = pool.num_threads();
  profile.calibrated_threads = threads;

  std::vector<int64_t> dims = options.stage_dims;
  if (dims.empty()) {
    dims = options.quick ? std::vector<int64_t>{96, 192, 384, 768}
                         : std::vector<int64_t>{256, 512, 1024, 2048, 4000};
  }
  std::sort(dims.begin(), dims.end());

  ParallelConfig par_cfg;
  par_cfg.num_threads = threads;
  par_cfg.min_rows_per_task = std::max<int64_t>(1, options.stage_grain);
  par_cfg.deterministic = true;
  // Measurements must not be steered by a previously installed profile.
  par_cfg.profile = &NeutralProfile();
  ParallelConfig seq_cfg = par_cfg;
  seq_cfg.num_threads = 1;

  std::vector<int64_t> work[kNumTunedStages];
  std::vector<double> seq_t[kNumTunedStages], par_t[kNumTunedStages];
  auto measure_stage = [&](TunedStage stage, int64_t w,
                           const std::function<void(const ParallelConfig&)>&
                               run) {
    const int s = static_cast<int>(stage);
    work[s].push_back(w);
    seq_t[s].push_back(MedianSeconds(options.reps, [&] { run(seq_cfg); }));
    par_t[s].push_back(MedianSeconds(options.reps, [&] { run(par_cfg); }));
  };

  for (int64_t d : dims) {
    Rng rng(MixSeed(options.seed, static_cast<uint64_t>(d)));
    const CsrMatrix a =
        GenerateUniformSparse(d, d, options.stage_sparsity, rng);
    const CsrMatrix b =
        GenerateUniformSparse(d, d, options.stage_sparsity, rng);
    const MncSketch ha = MncSketch::FromCsr(a);
    const MncSketch hb = MncSketch::FromCsr(b);

    measure_stage(TunedStage::kSketchBuild, d + a.NumNonZeros(),
                  [&](const ParallelConfig& c) {
                    MncSketch s = MncSketch::FromCsr(a, c, &pool);
                    g_sink_i64 = s.rows();
                  });
    measure_stage(TunedStage::kEstimate, d, [&](const ParallelConfig& c) {
      g_sink_f64 = EstimateProductNnz(ha, hb, c, &pool);
    });
    measure_stage(TunedStage::kPropagate, d + d,
                  [&](const ParallelConfig& c) {
                    MncSketch s =
                        PropagateProduct(ha, hb, options.seed, c, &pool);
                    g_sink_i64 = s.rows();
                  });
    measure_stage(TunedStage::kSpGemm, d + a.NumNonZeros(),
                  [&](const ParallelConfig& c) {
                    CsrMatrix p = MultiplySparseSparse(a, b, c, &pool);
                    g_sink_i64 = p.NumNonZeros();
                  });
  }

  for (int s = 0; s < kNumTunedStages; ++s) {
    StageCalib& cal = profile.stages[s];
    cal.crossover_work = FitCrossover(work[s], seq_t[s], par_t[s]);
    const double w = static_cast<double>(work[s].back());
    cal.seq_ns_per_work = seq_t[s].back() * 1e9 / w;
    cal.par_ns_per_work = par_t[s].back() * 1e9 / w;
    cal.grain = 0;
  }

  // Calibrated grain, grain-invariant stages only (see machine_profile.h):
  // at the largest ladder size, pick the block size whose parallel leg is
  // fastest.
  {
    const int64_t d = dims.back();
    Rng rng(MixSeed(options.seed, static_cast<uint64_t>(d) * 1315423911u));
    const CsrMatrix a =
        GenerateUniformSparse(d, d, options.stage_sparsity, rng);
    const CsrMatrix b =
        GenerateUniformSparse(d, d, options.stage_sparsity, rng);
    const std::vector<int64_t> grains =
        options.quick ? std::vector<int64_t>{32, 128}
                      : std::vector<int64_t>{32, 64, 128, 256};
    auto tune_grain = [&](TunedStage stage,
                          const std::function<void(const ParallelConfig&)>&
                              run) {
      double best_t = 0.0;
      int64_t best_g = 0;
      for (int64_t g : grains) {
        ParallelConfig c = par_cfg;
        c.min_rows_per_task = g;
        const double t = MedianSeconds(options.reps, [&] { run(c); });
        if (best_g == 0 || t < best_t) {
          best_t = t;
          best_g = g;
        }
      }
      profile.stage(stage).grain = best_g;
    };
    tune_grain(TunedStage::kSketchBuild, [&](const ParallelConfig& c) {
      MncSketch s = MncSketch::FromCsr(a, c, &pool);
      g_sink_i64 = s.rows();
    });
    tune_grain(TunedStage::kSpGemm, [&](const ParallelConfig& c) {
      CsrMatrix p = MultiplySparseSparse(a, b, c, &pool);
      g_sink_i64 = p.NumNonZeros();
    });
  }

  // --- Guided-execution break-evens --------------------------------------
  {
    const int64_t d = options.quick ? 128 : 256;
    const std::vector<double> targets =
        options.quick ? std::vector<double>{0.2, 0.4, 0.6}
                      : std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
    std::vector<double> densities, sparse_t, dense_t;
    double reserve_ratio_sum = 0.0;
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      // Uniform inputs with sparsity s give product density
      // ~ 1 - (1 - s^2)^d; invert for the target.
      const double s = std::min(
          0.5, std::sqrt(-std::expm1(std::log1p(-targets[ti]) /
                                     static_cast<double>(d))));
      Rng rng(MixSeed(options.seed, 7777 + ti));
      const CsrMatrix a = GenerateUniformSparse(d, d, s, rng);
      const CsrMatrix b = GenerateUniformSparse(d, d, s, rng);
      int64_t out_nnz = 0;
      const double t_sparse = MedianSeconds(options.reps, [&] {
        CsrMatrix p = MultiplySparseSparse(a, b);
        out_nnz = p.NumNonZeros();
        g_sink_i64 = out_nnz;
      });
      const double t_dense = MedianSeconds(options.reps, [&] {
        DenseMatrix p = MultiplySparseSparseDense(a, b, &pool);
        g_sink_f64 = p.rows() > 0 ? p.At(0, 0) : 0.0;
      });
      const double density = static_cast<double>(out_nnz) /
                             (static_cast<double>(d) * static_cast<double>(d));
      densities.push_back(density);
      sparse_t.push_back(t_sparse);
      dense_t.push_back(t_dense);
      if (out_nnz > 0) {
        reserve_ratio_sum += static_cast<double>(BlindReserveBytesModel(out_nnz)) /
                             static_cast<double>(out_nnz);
      }
    }
    // First density from which dense-direct wins at every denser point.
    size_t first_win = densities.size();
    for (size_t i = densities.size(); i-- > 0;) {
      if (dense_t[i] < sparse_t[i]) {
        first_win = i;
      } else {
        break;
      }
    }
    double threshold;
    if (first_win == densities.size()) {
      threshold = 1.0;  // dense-direct never won: only certain-full goes dense
    } else if (first_win == 0) {
      threshold = densities[0];
    } else {
      const double g0 = dense_t[first_win - 1] - sparse_t[first_win - 1];
      const double g1 = dense_t[first_win] - sparse_t[first_win];
      const double t = g0 / (g0 - g1);
      threshold = densities[first_win - 1] +
                  t * (densities[first_win] - densities[first_win - 1]);
    }
    profile.guided.dense_dispatch_threshold =
        std::min(1.0, std::max(0.05, threshold));
    profile.guided.blind_reserve_bytes_per_nnz =
        targets.empty() ? 0.0
                        : reserve_ratio_sum /
                              static_cast<double>(targets.size());
  }

  // Single-pass budget from streaming OR bandwidth: size it so staging one
  // slice costs ~10 ms, clamped to [16 MB, 256 MB].
  {
    const KernelCalib& or_k =
        profile.kernel(TunedKernel::kOrWords);
    const double ns = or_k.use_simd ? or_k.simd_stream_ns : or_k.scalar_stream_ns;
    const double bytes_per_ns =
        ns > 0.0 ? static_cast<double>(stream_n) * 8.0 / ns : 0.0;
    const double budget = bytes_per_ns * 1e7;  // bytes movable in 10 ms
    const double clamped =
        std::min(256.0 * (1 << 20), std::max(16.0 * (1 << 20), budget));
    profile.guided.single_pass_budget_bytes = static_cast<int64_t>(clamped);
  }

  return profile;
}

}  // namespace tuning
}  // namespace mnc
