// One-shot machine calibration: micro-benchmarks the host and fits the
// crossover thresholds a MachineProfile carries (see machine_profile.h).
//
// What is measured:
//   * Per-kernel scalar vs. dispatched-SIMD throughput at a cache-resident
//     and a streaming size (the same two operating points as
//     bench/micro_kernels); kernels whose SIMD variant does not win get a
//     scalar verdict.
//   * Seq-vs-par wall time for the four parallel stages (sketch build,
//     Algorithm 1 estimation, Eq. 11/15 propagation, two-pass SpGEMM) over
//     a ladder of problem sizes; the crossover is the piecewise-linear
//     interpolation of the sign change of (seq - par), clamped to
//     "always" / "never" when one side wins everywhere.
//   * Guided-execution break-even density between CSR SpGEMM and
//     dense-direct accumulation, the measured bytes-per-nnz of the blind
//     reservation model, and a single-pass budget sized from streaming
//     bandwidth.
//
// Calibration is measurement only — it never changes numeric behavior. The
// profile it produces selects among bit-identical deterministic paths.

#ifndef MNC_TUNING_CALIBRATE_H_
#define MNC_TUNING_CALIBRATE_H_

#include <cstdint>
#include <vector>

#include "mnc/tuning/machine_profile.h"
#include "mnc/util/status.h"

namespace mnc {
namespace tuning {

struct CalibrationOptions {
  // Worker threads for the parallel-stage ladder; 0 selects the hardware
  // concurrency.
  int threads = 0;
  // Median-of-reps for every timing.
  int reps = 3;
  // Quick mode shrinks sizes/ladders ~10x for tests and CI smoke runs; the
  // fitted thresholds are noisier but structurally identical.
  bool quick = false;

  // Kernel operating points (elements / bitset words per call).
  int64_t kernel_cache_elems = 16384;
  int64_t kernel_stream_elems = int64_t{1} << 21;

  // Parallel-stage ladder: square dimensions measured at `stage_sparsity`.
  // Empty selects the built-in ladder (quick: {96, 192, 384, 768},
  // full: {256, 512, 1024, 2048, 4000}).
  std::vector<int64_t> stage_dims;
  double stage_sparsity = 0.005;
  // Block size used while measuring the parallel legs (also recorded as the
  // calibrated grain for the grain-invariant stages).
  int64_t stage_grain = 64;

  // PRNG seed for the synthetic inputs.
  uint64_t seed = 42;
};

// Runs the full calibration pass. Honors the "tuning.measure" fail point
// (typed kInternal, for fault drills). Expect a few seconds in quick mode
// and up to ~a minute full.
StatusOr<MachineProfile> Calibrate(const CalibrationOptions& options = {});

}  // namespace tuning
}  // namespace mnc

#endif  // MNC_TUNING_CALIBRATE_H_
