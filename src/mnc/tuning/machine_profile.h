// Machine calibration profile: measured crossover thresholds for every
// runtime dispatch decision the library makes — seq-vs-par per parallel
// stage, scalar-vs-SIMD per kernel, and the guided-execution dense /
// single-pass break-evens (see calibrate.h for the pass that measures them).
//
// Dispatch-identity contract: a profile only ever selects WHICH of two
// bit-identical deterministic paths runs, never what that path computes.
// Seq-vs-par toggling is covered by the ParallelConfig determinism contract
// (fixed-size blocks → same PRNG streams and FP association at any thread
// count, including 1). Calibrated grain is applied only to grain-invariant
// stages (sketch build: integer merges; SpGEMM: disjoint per-row output) —
// never to estimation (blocked FP sums) or propagation (per-block PRNG
// streams), whose outputs are keyed to the caller's block size. Kernel
// verdicts swap in the scalar member of the dispatch table, which every
// SIMD level must already match bit-for-bit (simd_kernels_test). The
// differential harness asserts all of this end to end.
//
// Persistence: a versioned, CRC32-checksummed `.mncp` file (every byte is
// covered by a checksum; any single-byte flip is detected as kDataLoss,
// matching the sketch wire format's corruption contract). Loading is lazy
// and fails soft: a missing or corrupt profile leaves every dispatch
// decision at today's built-in constants.

#ifndef MNC_TUNING_MACHINE_PROFILE_H_
#define MNC_TUNING_MACHINE_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "mnc/kernels/kernels.h"
#include "mnc/util/parallel.h"
#include "mnc/util/simd.h"
#include "mnc/util/status.h"

namespace mnc {
namespace tuning {

// The kernels a profile holds verdicts for, in KernelTable declaration
// order. Names match bench/micro_kernels.cc so profiles and bench reports
// line up.
enum class TunedKernel : int {
  kDotCounts = 0,
  kDotCountsDiff,
  kDensityCombine,
  kScaleCounts,
  kEwiseMultEst,
  kEwiseAddEst,
  kOrInto,
  kOrWords,
  kAndWords,
  kPopcountWords,
  kAndPopcountWords,
};
inline constexpr int kNumTunedKernels = 11;

const char* TunedKernelName(TunedKernel kernel);

// Measured per-kernel throughput at a cache-resident and a streaming input
// size, and the verdict the dispatch layer consults. ns values are
// per-call medians at the calibration sizes; a kernel whose SIMD variant
// does not beat scalar (geomean speedup <= 1.0 across both sizes) is
// demoted to the scalar entry.
struct KernelCalib {
  double scalar_cache_ns = 0.0;
  double simd_cache_ns = 0.0;
  double scalar_stream_ns = 0.0;
  double simd_stream_ns = 0.0;
  bool use_simd = true;  // default verdict: trust the SIMD dispatch
};

// Sentinel crossover for "parallel never won at any measured size".
inline constexpr int64_t kNeverParallel = int64_t{1} << 60;

// Seq-vs-par calibration of one parallel stage. `crossover_work` is in the
// stage's work metric (see TunedStageWork below): below it the parallel
// path measured slower than sequential and ForStage() falls back to
// num_threads = 1. -1 means "uncalibrated — keep the caller's parallelism".
struct StageCalib {
  int64_t crossover_work = -1;
  // Advisory block size measured fastest for this stage; 0 keeps the
  // caller's grain. Only honored for grain-invariant stages (see header
  // comment).
  int64_t grain = 0;
  // ns per unit of work at the largest calibrated size (informational).
  double seq_ns_per_work = 0.0;
  double par_ns_per_work = 0.0;
};

// Guided-execution break-evens. Negative / zero fields mean "uncalibrated
// — use the built-in constants" (kDenseDispatchThreshold, the 64 MB
// single-pass budget, the power-of-two BlindReserveBytesModel).
struct GuidedCalib {
  double dense_dispatch_threshold = -1.0;
  int64_t single_pass_budget_bytes = 0;
  double blind_reserve_bytes_per_nnz = 0.0;
};

struct MachineProfile {
  // Thread count the stage calibration ran with.
  int calibrated_threads = 1;
  // SIMD level the kernel verdicts were measured against.
  SimdLevel simd_level = SimdLevel::kScalar;

  KernelCalib kernels[kNumTunedKernels];
  StageCalib stages[kNumTunedStages];
  GuidedCalib guided;

  const KernelCalib& kernel(TunedKernel k) const {
    return kernels[static_cast<int>(k)];
  }
  KernelCalib& kernel(TunedKernel k) { return kernels[static_cast<int>(k)]; }
  const StageCalib& stage(TunedStage s) const {
    return stages[static_cast<int>(s)];
  }
  StageCalib& stage(TunedStage s) { return stages[static_cast<int>(s)]; }

  // Whether `work` units of `stage` should run on the pool. Monotone in
  // `work` by construction: a single threshold per stage, so once true it
  // stays true for all larger work sizes.
  bool ShouldParallelize(TunedStage stage, int64_t work) const {
    const StageCalib& s = stages[static_cast<int>(stage)];
    if (s.crossover_work < 0) return true;  // uncalibrated: caller decides
    return work >= s.crossover_work;
  }
};

// The work metric each stage's crossover is expressed in (documented here
// so call sites and the calibration ladder agree):
//   kSketchBuild: rows + nnz of the input matrix
//   kEstimate:    the common (inner) dimension n
//   kPropagate:   rows + cols of the output sketch
//   kSpGemm:      rows + nnz of the left operand
int64_t TunedStageWork(TunedStage stage, int64_t rows, int64_t nnz_or_cols);

// --- Persistence (.mncp wire format v1) ----------------------------------

// Serializes to the checksummed wire format (always succeeds; profiles are
// a few hundred bytes).
std::string SerializeProfile(const MachineProfile& profile);

// Parses a serialized profile. Typed failures: kDataLoss for any corruption
// (bad magic, CRC mismatch, truncation, out-of-range field — every byte of
// the format is checksummed), kUnimplemented for a structurally intact file
// written by a newer format version.
StatusOr<MachineProfile> ParseProfile(std::string_view bytes);

// File round-trip. SaveProfile creates parent directories as needed.
// LoadProfile adds kNotFound when the file does not exist and honors the
// "tuning.profile_read" fail point (typed kDataLoss, for fault drills).
Status SaveProfile(const MachineProfile& profile, const std::string& path);
StatusOr<MachineProfile> LoadProfile(const std::string& path);

// Whether `profile` was calibrated on hardware compatible with this host:
// its thread count must not exceed std::thread::hardware_concurrency() and
// its SIMD level must equal BestSupportedSimdLevel(). A profile carried
// over from a bigger box or a different ISA would replay crossovers and
// kernel verdicts measured under conditions this host cannot reproduce.
// On mismatch returns false and, when `why` is non-null, describes the
// first mismatch. Detection only — callers decide whether to reject.
bool ProfileMatchesHost(const MachineProfile& profile, std::string* why);

// Default on-disk location: $MNC_PROFILE if set, else
// $XDG_CACHE_HOME/mnc/profile.mncp, else $HOME/.cache/mnc/profile.mncp.
// Empty when no base directory can be determined.
std::string DefaultProfilePath();

// --- Process-wide active profile -----------------------------------------
//
// The active profile is what ParallelConfig::ForStage and the kernel
// dispatch consult when the caller did not supply one explicitly.
// Installation also (de)installs the tuned kernel table. Like
// ScopedForceKernels, installation is published atomically but not
// synchronized against in-flight kernels — install before spawning
// parallel work. Installed profiles are pinned for the process lifetime so
// lock-free readers never observe a dangling pointer.

// Installs `profile` (nullptr clears). Marks the lazy load as settled
// either way.
void SetActiveProfile(std::shared_ptr<const MachineProfile> profile);

// The installed profile; on first call with nothing installed, attempts a
// lazy load from DefaultProfilePath() (missing/corrupt → soft fallback to
// nullptr; corrupt prints a one-line stderr warning). Never throws.
std::shared_ptr<const MachineProfile> ActiveProfile();

// Lock-free variant for hot paths; same lazy-load semantics. The pointer
// stays valid for the process lifetime (pinned).
const MachineProfile* ActiveProfileRaw();

// Test hook: forgets any installed profile AND re-enables the lazy load.
void ResetActiveProfileForTest();

// An everything-uncalibrated profile (all crossovers -1, grains 0, SIMD
// verdicts true). Attaching it to a ParallelConfig suppresses the
// process-wide active profile without changing any decision — the
// calibration pass uses it so its own measurements are never skewed by a
// previously installed profile.
const MachineProfile& NeutralProfile();

// RAII install/restore for tests and benches. Overriding with nullptr
// pins "no profile" (suppresses the lazy load) for the scope.
class ScopedProfileOverride {
 public:
  explicit ScopedProfileOverride(std::shared_ptr<const MachineProfile> profile);
  ~ScopedProfileOverride();

  ScopedProfileOverride(const ScopedProfileOverride&) = delete;
  ScopedProfileOverride& operator=(const ScopedProfileOverride&) = delete;

 private:
  std::shared_ptr<const MachineProfile> previous_;
  bool previous_settled_;
};

// Builds the hybrid kernel table a profile's verdicts imply: per kernel,
// the dispatched SIMD entry when use_simd, else the scalar entry. Exposed
// for tests; SetActiveProfile installs it automatically.
kernels::KernelTable BuildTunedKernelTable(const MachineProfile& profile);

}  // namespace tuning
}  // namespace mnc

#endif  // MNC_TUNING_MACHINE_PROFILE_H_
