#include "mnc/tuning/machine_profile.h"

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <sys/stat.h>
#include <thread>
#include <utility>
#include <vector>

#include "mnc/util/crc32.h"
#include "mnc/util/fail_point.h"

namespace mnc {
namespace tuning {

namespace {

// Wire format v1:
//   [0,4)   magic "MNCP"
//   [4,8)   u32 version
//   [8,12)  u32 payload_size
//   [12,16) u32 header_crc  — CRC32 over bytes [0,12)
//   [16,16+payload_size)    payload
//   trailing u32 payload_crc — CRC32 over the payload
// Every byte is covered by one of the two CRCs (a flip inside a CRC field
// makes its own comparison fail), so any single-byte corruption is a typed
// kDataLoss. The header CRC is verified before the version is interpreted:
// a flipped version byte is corruption, while a structurally intact file
// with a higher version is the typed kUnimplemented negotiation error.
constexpr char kMagic[4] = {'M', 'N', 'C', 'P'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kMaxPayload = 1 << 20;  // sanity bound before allocating

void PutU32(std::string& out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

void PutU64(std::string& out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void PutI64(std::string& out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

// Bounds-checked little cursor over the payload.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  bool Read(void* dst, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool U32(uint32_t* v) { return Read(v, 4); }
  bool U8(uint8_t* v) { return Read(v, 1); }
  bool I64(int64_t* v) {
    uint64_t bits;
    if (!Read(&bits, 8)) return false;
    *v = static_cast<int64_t>(bits);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!Read(&bits, 8)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& what) {
  return Status::DataLoss("machine profile: " + what);
}

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

const char* TunedKernelName(TunedKernel kernel) {
  switch (kernel) {
    case TunedKernel::kDotCounts: return "dot_counts";
    case TunedKernel::kDotCountsDiff: return "dot_counts_diff";
    case TunedKernel::kDensityCombine: return "density_combine";
    case TunedKernel::kScaleCounts: return "scale_counts";
    case TunedKernel::kEwiseMultEst: return "ewise_mult_est";
    case TunedKernel::kEwiseAddEst: return "ewise_add_est";
    case TunedKernel::kOrInto: return "or_into";
    case TunedKernel::kOrWords: return "or_words";
    case TunedKernel::kAndWords: return "and_words";
    case TunedKernel::kPopcountWords: return "popcount_words";
    case TunedKernel::kAndPopcountWords: return "and_popcount_words";
  }
  return "unknown";
}

int64_t TunedStageWork(TunedStage stage, int64_t rows, int64_t nnz_or_cols) {
  switch (stage) {
    case TunedStage::kSketchBuild:
    case TunedStage::kSpGemm:
    case TunedStage::kPropagate:
      return rows + nnz_or_cols;
    case TunedStage::kEstimate:
      return nnz_or_cols;  // the common dimension n
  }
  return rows + nnz_or_cols;
}

std::string SerializeProfile(const MachineProfile& profile) {
  std::string payload;
  PutU32(payload, static_cast<uint32_t>(profile.calibrated_threads));
  PutU32(payload, static_cast<uint32_t>(profile.simd_level));
  PutU32(payload, static_cast<uint32_t>(kNumTunedKernels));
  for (const KernelCalib& k : profile.kernels) {
    payload.push_back(k.use_simd ? 1 : 0);
    PutF64(payload, k.scalar_cache_ns);
    PutF64(payload, k.simd_cache_ns);
    PutF64(payload, k.scalar_stream_ns);
    PutF64(payload, k.simd_stream_ns);
  }
  PutU32(payload, static_cast<uint32_t>(kNumTunedStages));
  for (const StageCalib& s : profile.stages) {
    PutI64(payload, s.crossover_work);
    PutI64(payload, s.grain);
    PutF64(payload, s.seq_ns_per_work);
    PutF64(payload, s.par_ns_per_work);
  }
  PutF64(payload, profile.guided.dense_dispatch_threshold);
  PutI64(payload, profile.guided.single_pass_budget_bytes);
  PutF64(payload, profile.guided.blind_reserve_bytes_per_nnz);

  std::string out;
  out.append(kMagic, 4);
  PutU32(out, kVersion);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(out.data(), out.size()));
  out += payload;
  PutU32(out, Crc32(payload.data(), payload.size()));
  return out;
}

StatusOr<MachineProfile> ParseProfile(std::string_view bytes) {
  if (bytes.size() < 16) return Corrupt("truncated header");
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) return Corrupt("bad magic");
  uint32_t version, payload_size, header_crc;
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&payload_size, bytes.data() + 8, 4);
  std::memcpy(&header_crc, bytes.data() + 12, 4);
  if (Crc32(bytes.data(), 12) != header_crc) {
    return Corrupt("header checksum mismatch");
  }
  // Header is intact; now the version field is trustworthy.
  if (version != kVersion) {
    return Status::Unimplemented(
        "machine profile: format version " + std::to_string(version) +
        " not supported (this build reads version " +
        std::to_string(kVersion) + "); recalibrate with `mnc_tool calibrate`");
  }
  if (payload_size > kMaxPayload) return Corrupt("payload size out of range");
  if (bytes.size() != 16 + static_cast<size_t>(payload_size) + 4) {
    return Corrupt(bytes.size() < 16 + static_cast<size_t>(payload_size) + 4
                       ? "truncated payload"
                       : "trailing bytes");
  }
  const char* payload = bytes.data() + 16;
  uint32_t payload_crc;
  std::memcpy(&payload_crc, payload + payload_size, 4);
  if (Crc32(payload, payload_size) != payload_crc) {
    return Corrupt("payload checksum mismatch");
  }

  Cursor cur(payload, payload_size);
  MachineProfile p;
  uint32_t threads, level, kernel_count, stage_count;
  if (!cur.U32(&threads) || !cur.U32(&level) || !cur.U32(&kernel_count)) {
    return Corrupt("short payload");
  }
  if (threads < 1 || threads > 65536) return Corrupt("thread count out of range");
  if (level > static_cast<uint32_t>(SimdLevel::kNeon)) {
    return Corrupt("simd level out of range");
  }
  if (kernel_count != static_cast<uint32_t>(kNumTunedKernels)) {
    return Corrupt("kernel count mismatch");
  }
  p.calibrated_threads = static_cast<int>(threads);
  p.simd_level = static_cast<SimdLevel>(level);
  for (KernelCalib& k : p.kernels) {
    uint8_t use_simd;
    if (!cur.U8(&use_simd) || !cur.F64(&k.scalar_cache_ns) ||
        !cur.F64(&k.simd_cache_ns) || !cur.F64(&k.scalar_stream_ns) ||
        !cur.F64(&k.simd_stream_ns)) {
      return Corrupt("short payload");
    }
    if (use_simd > 1) return Corrupt("kernel verdict out of range");
    if (!FiniteNonNegative(k.scalar_cache_ns) ||
        !FiniteNonNegative(k.simd_cache_ns) ||
        !FiniteNonNegative(k.scalar_stream_ns) ||
        !FiniteNonNegative(k.simd_stream_ns)) {
      return Corrupt("kernel timing out of range");
    }
    k.use_simd = use_simd != 0;
  }
  if (!cur.U32(&stage_count)) return Corrupt("short payload");
  if (stage_count != static_cast<uint32_t>(kNumTunedStages)) {
    return Corrupt("stage count mismatch");
  }
  for (StageCalib& s : p.stages) {
    if (!cur.I64(&s.crossover_work) || !cur.I64(&s.grain) ||
        !cur.F64(&s.seq_ns_per_work) || !cur.F64(&s.par_ns_per_work)) {
      return Corrupt("short payload");
    }
    if (s.crossover_work < -1 || s.crossover_work > (int64_t{1} << 61)) {
      return Corrupt("stage crossover out of range");
    }
    if (s.grain < 0 || s.grain > (int64_t{1} << 30)) {
      return Corrupt("stage grain out of range");
    }
    if (!FiniteNonNegative(s.seq_ns_per_work) ||
        !FiniteNonNegative(s.par_ns_per_work)) {
      return Corrupt("stage timing out of range");
    }
  }
  GuidedCalib& g = p.guided;
  if (!cur.F64(&g.dense_dispatch_threshold) ||
      !cur.I64(&g.single_pass_budget_bytes) ||
      !cur.F64(&g.blind_reserve_bytes_per_nnz)) {
    return Corrupt("short payload");
  }
  if (!(std::isfinite(g.dense_dispatch_threshold) &&
        g.dense_dispatch_threshold <= 1.0)) {
    return Corrupt("dense threshold out of range");
  }
  if (g.single_pass_budget_bytes < 0 ||
      g.single_pass_budget_bytes > (int64_t{1} << 40)) {
    return Corrupt("single-pass budget out of range");
  }
  if (!FiniteNonNegative(g.blind_reserve_bytes_per_nnz) ||
      g.blind_reserve_bytes_per_nnz > 1e6) {
    return Corrupt("reserve model out of range");
  }
  if (!cur.AtEnd()) return Corrupt("payload size mismatch");
  return p;
}

Status SaveProfile(const MachineProfile& profile, const std::string& path) {
  // Create parent directories (best effort; the open below reports failure).
  for (size_t i = 1; i < path.size(); ++i) {
    if (path[i] == '/') {
      ::mkdir(path.substr(0, i).c_str(), 0755);
    }
  }
  const std::string bytes = SerializeProfile(profile);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("machine profile: cannot open " + path +
                               " for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::Unavailable("machine profile: short write to " + path);
  }
  return Status::Ok();
}

StatusOr<MachineProfile> LoadProfile(const std::string& path) {
  if (MncFailPointArmed("tuning.profile_read")) {
    return Status::DataLoss(
        "machine profile: fail point tuning.profile_read armed");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("machine profile: " + path + " not found");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::DataLoss("machine profile: read error on " + path);
  }
  return ParseProfile(buf.str());
}

std::string DefaultProfilePath() {
  if (const char* env = std::getenv("MNC_PROFILE");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && xdg[0] != '\0') {
    return std::string(xdg) + "/mnc/profile.mncp";
  }
  if (const char* home = std::getenv("HOME");
      home != nullptr && home[0] != '\0') {
    return std::string(home) + "/.cache/mnc/profile.mncp";
  }
  return "";
}

bool ProfileMatchesHost(const MachineProfile& profile, std::string* why) {
  const unsigned hw = std::thread::hardware_concurrency();
  // hardware_concurrency() may return 0 ("unknown"); skip the thread check
  // then rather than rejecting every profile on such hosts.
  if (hw > 0 && profile.calibrated_threads > static_cast<int>(hw)) {
    if (why != nullptr) {
      *why = "calibrated for " + std::to_string(profile.calibrated_threads) +
             " threads but host reports " + std::to_string(hw);
    }
    return false;
  }
  const SimdLevel host = BestSupportedSimdLevel();
  if (profile.simd_level != host) {
    if (why != nullptr) {
      *why = std::string("calibrated at SIMD level ") +
             SimdLevelName(profile.simd_level) + " but host dispatches " +
             SimdLevelName(host);
    }
    return false;
  }
  return true;
}

// --- Active profile registry ---------------------------------------------

namespace {

std::mutex g_profile_mu;
// Pinned for process lifetime so ActiveProfileRaw() readers never dangle.
std::vector<std::shared_ptr<const MachineProfile>>& PinnedProfiles() {
  static auto* pinned = new std::vector<std::shared_ptr<const MachineProfile>>();
  return *pinned;
}
std::shared_ptr<const MachineProfile> g_active;  // guarded by g_profile_mu
// "settled" means an install (possibly of nullptr) or the lazy load already
// decided the active profile; until then the first reader triggers the load.
bool g_settled = false;
std::atomic<const MachineProfile*> g_active_raw{nullptr};
// Storage for the hybrid table the installed profile implies.
kernels::KernelTable g_tuned_table_storage;

// Installs under g_profile_mu (caller holds it).
void InstallLocked(std::shared_ptr<const MachineProfile> profile) {
  g_active = std::move(profile);
  g_settled = true;
  if (g_active != nullptr) {
    PinnedProfiles().push_back(g_active);
    g_tuned_table_storage = BuildTunedKernelTable(*g_active);
    kernels::SetTunedKernelTable(&g_tuned_table_storage);
  } else {
    kernels::SetTunedKernelTable(nullptr);
  }
  g_active_raw.store(g_active.get(), std::memory_order_release);
}

void LazyLoadLocked() {
  if (g_settled) return;
  g_settled = true;
  const std::string path = DefaultProfilePath();
  if (path.empty()) return;
  StatusOr<MachineProfile> loaded = LoadProfile(path);
  if (loaded.ok()) {
    // Topology guard: a profile copied from (or calibrated on) a different
    // machine would replay crossovers and kernel verdicts this host cannot
    // reproduce. Only the disk path is guarded — SetActiveProfile and
    // ScopedProfileOverride stay unchecked so tests and benches can install
    // arbitrary synthetic profiles.
    std::string why;
    if (!ProfileMatchesHost(*loaded, &why)) {
      std::fprintf(stderr,
                   "mnc: calibration profile %s does not match this host "
                   "(%s); using neutral profile\n",
                   path.c_str(), why.c_str());
      InstallLocked(std::make_shared<const MachineProfile>(NeutralProfile()));
      return;
    }
    InstallLocked(
        std::make_shared<const MachineProfile>(std::move(loaded).value()));
    return;
  }
  if (loaded.status().code() != StatusCode::kNotFound) {
    // Corrupt/unreadable profile: fall back to built-in constants, but say
    // so once — silently ignoring a corrupt calibration is how regressions
    // hide.
    std::fprintf(stderr, "mnc: ignoring calibration profile %s: %s\n",
                 path.c_str(), loaded.status().message().c_str());
  }
}

}  // namespace

void SetActiveProfile(std::shared_ptr<const MachineProfile> profile) {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  InstallLocked(std::move(profile));
}

std::shared_ptr<const MachineProfile> ActiveProfile() {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  LazyLoadLocked();
  return g_active;
}

const MachineProfile* ActiveProfileRaw() {
  // Fast path: settled state is observable through the raw pointer except
  // for the settled-as-null case, which the acquire fence below re-checks.
  const MachineProfile* p = g_active_raw.load(std::memory_order_acquire);
  if (p != nullptr) return p;
  std::lock_guard<std::mutex> lock(g_profile_mu);
  LazyLoadLocked();
  return g_active.get();
}

void ResetActiveProfileForTest() {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  g_active = nullptr;
  g_settled = false;
  g_active_raw.store(nullptr, std::memory_order_release);
  kernels::SetTunedKernelTable(nullptr);
}

const MachineProfile& NeutralProfile() {
  static const MachineProfile* neutral = new MachineProfile();
  return *neutral;
}

ScopedProfileOverride::ScopedProfileOverride(
    std::shared_ptr<const MachineProfile> profile) {
  {
    std::lock_guard<std::mutex> lock(g_profile_mu);
    previous_ = g_active;
    previous_settled_ = g_settled;
  }
  SetActiveProfile(std::move(profile));
}

ScopedProfileOverride::~ScopedProfileOverride() {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  if (previous_settled_) {
    InstallLocked(std::move(previous_));
  } else {
    g_active = nullptr;
    g_settled = false;
    g_active_raw.store(nullptr, std::memory_order_release);
    kernels::SetTunedKernelTable(nullptr);
  }
}

kernels::KernelTable BuildTunedKernelTable(const MachineProfile& profile) {
  const kernels::KernelTable& simd =
      kernels::KernelsForLevel(BestSupportedSimdLevel());
  const kernels::KernelTable& scalar = kernels::ScalarKernels();
  auto pick = [&](TunedKernel k) {
    return profile.kernel(k).use_simd;
  };
  kernels::KernelTable t = simd;
  if (!pick(TunedKernel::kDotCounts)) t.dot_counts = scalar.dot_counts;
  if (!pick(TunedKernel::kDotCountsDiff)) {
    t.dot_counts_diff = scalar.dot_counts_diff;
  }
  if (!pick(TunedKernel::kDensityCombine)) {
    t.density_combine = scalar.density_combine;
  }
  if (!pick(TunedKernel::kScaleCounts)) t.scale_counts = scalar.scale_counts;
  if (!pick(TunedKernel::kEwiseMultEst)) {
    t.ewise_mult_est = scalar.ewise_mult_est;
  }
  if (!pick(TunedKernel::kEwiseAddEst)) t.ewise_add_est = scalar.ewise_add_est;
  if (!pick(TunedKernel::kOrInto)) t.or_into = scalar.or_into;
  if (!pick(TunedKernel::kOrWords)) t.or_words = scalar.or_words;
  if (!pick(TunedKernel::kAndWords)) t.and_words = scalar.and_words;
  if (!pick(TunedKernel::kPopcountWords)) {
    t.popcount_words = scalar.popcount_words;
  }
  if (!pick(TunedKernel::kAndPopcountWords)) {
    t.and_popcount_words = scalar.and_popcount_words;
  }
  return t;
}

}  // namespace tuning
}  // namespace mnc
