#include "mnc/estimators/fallback_estimator.h"

#include <cctype>
#include <cmath>

#include "mnc/estimators/density_map_estimator.h"
#include "mnc/estimators/meta_estimator.h"
#include "mnc/estimators/mnc_adapter.h"
#include "mnc/util/fail_point.h"

namespace mnc {

namespace {

// "MNC Basic" -> "estimator.mncbasic", "MetaAC" -> "estimator.metaac".
std::string TierFailPointName(const std::string& estimator_name) {
  std::string name = "estimator.";
  for (char c : estimator_name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      name.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return name;
}

bool SaneSparsity(double s) { return std::isfinite(s) && s >= 0.0 && s <= 1.0; }

}  // namespace

FallbackEstimator::FallbackEstimator() {
  std::vector<TierConfig> tiers;
  tiers.push_back({std::make_unique<MncEstimator>(), -1});
  tiers.push_back({std::make_unique<DensityMapEstimator>(), -1});
  tiers.push_back({std::make_unique<MetaAcEstimator>(), -1});
  tiers_ = std::move(tiers);
  for (const TierConfig& tier : tiers_) {
    TierStats s;
    s.name = tier.estimator->Name();
    s.fail_point = TierFailPointName(s.name);
    stats_.push_back(std::move(s));
  }
}

FallbackEstimator::FallbackEstimator(std::vector<TierConfig> tiers)
    : tiers_(std::move(tiers)) {
  MNC_CHECK_MSG(!tiers_.empty(), "fallback chain needs at least one tier");
  for (const TierConfig& tier : tiers_) {
    MNC_CHECK(tier.estimator != nullptr);
    TierStats s;
    s.name = tier.estimator->Name();
    s.fail_point = TierFailPointName(s.name);
    stats_.push_back(std::move(s));
  }
}

bool FallbackEstimator::SupportsOp(OpKind op) const {
  for (const TierConfig& tier : tiers_) {
    if (tier.estimator->SupportsOp(op)) return true;
  }
  return false;
}

bool FallbackEstimator::SupportsChains() const {
  for (const TierConfig& tier : tiers_) {
    if (tier.estimator->SupportsChains()) return true;
  }
  return false;
}

SynopsisPtr FallbackEstimator::Build(const Matrix& a) {
  std::vector<SynopsisPtr> slots;
  slots.reserve(tiers_.size());
  for (size_t t = 0; t < tiers_.size(); ++t) {
    if (MncFailPointArmed(stats_[t].fail_point.c_str())) {
      ++stats_[t].build_failures;
      slots.push_back(nullptr);
      continue;
    }
    SynopsisPtr syn = tiers_[t].estimator->Build(a);
    const int64_t budget = tiers_[t].synopsis_budget_bytes;
    if (syn != nullptr && budget >= 0 && syn->SizeBytes() > budget) {
      ++stats_[t].build_failures;
      syn = nullptr;  // over budget: degrade this matrix to later tiers
    }
    slots.push_back(std::move(syn));
  }
  return std::make_shared<FallbackSynopsis>(a.rows(), a.cols(),
                                            std::move(slots));
}

StatusOr<FallbackEstimator::TieredEstimate>
FallbackEstimator::TryEstimateSparsity(OpKind op, const SynopsisPtr& a,
                                       const SynopsisPtr& b, int64_t out_rows,
                                       int64_t out_cols) {
  last_serving_tier_.clear();
  last_serving_tier_index_ = -1;
  const FallbackSynopsis& fa = As<FallbackSynopsis>(a);
  const FallbackSynopsis* fb =
      b != nullptr ? &As<FallbackSynopsis>(b) : nullptr;

  std::string failures;
  for (size_t t = 0; t < tiers_.size(); ++t) {
    auto skip = [&](const char* why) {
      ++stats_[t].estimate_failures;
      if (!failures.empty()) failures += "; ";
      failures += stats_[t].name;
      failures += ": ";
      failures += why;
    };
    if (MncFailPointArmed(stats_[t].fail_point.c_str())) {
      skip("disabled by fail point");
      continue;
    }
    if (!tiers_[t].estimator->SupportsOp(op)) {
      skip("operation not supported");
      continue;
    }
    const SynopsisPtr& sa = fa.tiers()[t];
    const SynopsisPtr sb = fb != nullptr ? fb->tiers()[t] : nullptr;
    if (sa == nullptr || (fb != nullptr && sb == nullptr)) {
      skip("synopsis unavailable");
      continue;
    }
    const double estimate =
        tiers_[t].estimator->EstimateSparsity(op, sa, sb, out_rows, out_cols);
    if (!SaneSparsity(estimate)) {
      skip("estimate failed the sanity invariant");
      continue;
    }
    ++stats_[t].serves;
    last_serving_tier_ = stats_[t].name;
    last_serving_tier_index_ = static_cast<int>(t);
    return TieredEstimate{estimate, static_cast<int>(t), stats_[t].name};
  }
  return Status::Unavailable("no fallback tier could serve " +
                             std::string(OpKindName(op)) + " (" + failures +
                             ")");
}

double FallbackEstimator::EstimateSparsity(OpKind op, const SynopsisPtr& a,
                                           const SynopsisPtr& b,
                                           int64_t out_rows,
                                           int64_t out_cols) {
  StatusOr<TieredEstimate> estimate =
      TryEstimateSparsity(op, a, b, out_rows, out_cols);
  // All tiers down: the only safe answer left is the worst-case bound.
  if (!estimate.ok()) return 1.0;
  return estimate->sparsity;
}

SynopsisPtr FallbackEstimator::Propagate(OpKind op, const SynopsisPtr& a,
                                         const SynopsisPtr& b,
                                         int64_t out_rows, int64_t out_cols) {
  const FallbackSynopsis& fa = As<FallbackSynopsis>(a);
  const FallbackSynopsis* fb =
      b != nullptr ? &As<FallbackSynopsis>(b) : nullptr;
  std::vector<SynopsisPtr> slots;
  slots.reserve(tiers_.size());
  for (size_t t = 0; t < tiers_.size(); ++t) {
    SparsityEstimator& est = *tiers_[t].estimator;
    const SynopsisPtr& sa = fa.tiers()[t];
    const SynopsisPtr sb = fb != nullptr ? fb->tiers()[t] : nullptr;
    // A tier without inputs, chain support, or op support stays degraded
    // downstream; later tiers keep the chain alive.
    if (MncFailPointArmed(stats_[t].fail_point.c_str()) ||
        !est.SupportsChains() || !est.SupportsOp(op) || sa == nullptr ||
        (fb != nullptr && sb == nullptr)) {
      slots.push_back(nullptr);
      continue;
    }
    slots.push_back(est.Propagate(op, sa, sb, out_rows, out_cols));
  }
  return std::make_shared<FallbackSynopsis>(out_rows, out_cols,
                                            std::move(slots));
}

}  // namespace mnc
