// Adapter exposing the MNC sketch (src/mnc/core) through the common
// SparsityEstimator interface, in the full (Algorithm 1 with extension
// vectors and bounds) and "MNC Basic" (Figures 10/13) variants. Supports
// every SparsEst operation and full sketch propagation.

#ifndef MNC_ESTIMATORS_MNC_ADAPTER_H_
#define MNC_ESTIMATORS_MNC_ADAPTER_H_

#include "mnc/core/mnc_propagation.h"
#include "mnc/core/mnc_sketch.h"
#include "mnc/estimators/sparsity_estimator.h"
#include "mnc/util/random.h"

namespace mnc {

class MncSynopsis final : public EstimatorSynopsis {
 public:
  explicit MncSynopsis(MncSketch sketch)
      : EstimatorSynopsis(sketch.rows(), sketch.cols()),
        sketch_(std::move(sketch)) {}

  const MncSketch& sketch() const { return sketch_; }
  int64_t SizeBytes() const override { return sketch_.SizeBytes(); }

 private:
  MncSketch sketch_;
};

class MncEstimator final : public SparsityEstimator {
 public:
  // `basic` selects the MNC Basic variant (no extension vectors, no bounds).
  // `rounding` selects the propagation rounding policy (§3.3; deterministic
  // exists for the ablation study).
  explicit MncEstimator(bool basic = false, uint64_t seed = 42,
                        RoundingMode rounding = RoundingMode::kProbabilistic);

  std::string Name() const override { return basic_ ? "MNC Basic" : "MNC"; }
  bool SupportsOp(OpKind) const override { return true; }
  bool SupportsChains() const override { return true; }
  SynopsisPtr Build(const Matrix& a) override;
  double EstimateSparsity(OpKind op, const SynopsisPtr& a,
                          const SynopsisPtr& b, int64_t out_rows,
                          int64_t out_cols) override;
  SynopsisPtr Propagate(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                        int64_t out_rows, int64_t out_cols) override;

  // Measured footprint (vector capacities + object) rather than the logical
  // SizeBytes, so byte budgets account for what is actually allocated.
  int64_t SynopsisBytes(const SynopsisPtr& s) const override {
    const auto* m = dynamic_cast<const MncSynopsis*>(s.get());
    return m != nullptr ? m->sketch().MemoryBytes()
                        : SparsityEstimator::SynopsisBytes(s);
  }

 private:
  MncSketch Derive(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                   int64_t out_rows, int64_t out_cols);

  bool basic_;
  // Mutable PRNG state: one MncEstimator instance must not be shared across
  // threads. Multi-threaded callers either create one instance per thread
  // (the FallbackEstimator chain is built per call in EstimationService for
  // exactly this reason) or use the seed-based parallel propagation
  // overloads in mnc/core/mnc_propagation.h, which never share Rng state
  // across tasks.
  Rng rng_;
  RoundingMode rounding_;
};

}  // namespace mnc

#endif  // MNC_ESTIMATORS_MNC_ADAPTER_H_
