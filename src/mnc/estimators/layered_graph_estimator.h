// Layered-graph estimator E_gph (§2.4) [Cohen, J. Comb. Optim. 1998].
//
// Conceptually, a chain (M1, ..., Mk) induces a (k+1)-level graph whose
// edges are the non-zero positions. Leaf nodes (rows of M1) receive
// r-vectors of i.i.d. Exp(1) draws; inner nodes take the element-wise
// minimum of their inputs. A node's r-vector then estimates the number of
// distinct leaves that reach it as (r - 1) / sum(rv) — so the r-vectors at
// the rightmost level estimate the non-zeros per output column (Eq. 6).
//
// The synopsis carries (a) the current r-vectors — the estimator state for
// the chain prefix — and (b) a handle to the base matrix so the next
// product's edges can be traversed. Supports matrix-product chains only,
// matching §6.6 ("these benchmarks do not apply to the layered graph").

#ifndef MNC_ESTIMATORS_LAYERED_GRAPH_ESTIMATOR_H_
#define MNC_ESTIMATORS_LAYERED_GRAPH_ESTIMATOR_H_

#include <vector>

#include "mnc/estimators/sparsity_estimator.h"
#include "mnc/util/random.h"

namespace mnc {

class LayeredGraphSynopsis final : public EstimatorSynopsis {
 public:
  LayeredGraphSynopsis(int64_t rows, int64_t cols, int rounds,
                       std::vector<float> column_rvectors, CsrMatrix matrix)
      : EstimatorSynopsis(rows, cols),
        rounds_(rounds),
        column_rvectors_(std::move(column_rvectors)),
        matrix_(std::move(matrix)) {}

  int rounds() const { return rounds_; }

  // r-vectors of the current rightmost level, column-major: entry
  // [j * rounds + t] is round t of column j. +inf marks "no reachable leaf".
  const std::vector<float>& column_rvectors() const {
    return column_rvectors_;
  }

  // The base matrix whose edges the next product traverses.
  const CsrMatrix& matrix() const { return matrix_; }

  int64_t SizeBytes() const override {
    // r-vectors (the nodes) plus the edge structure (the non-zeros), as in
    // the O(r d + nnz) size analysis of Table 1 / Fig. 9.
    return static_cast<int64_t>(column_rvectors_.size() * sizeof(float)) +
           static_cast<int64_t>(matrix_.NumNonZeros() *
                                (sizeof(int64_t) + sizeof(double)));
  }

 private:
  int rounds_;
  std::vector<float> column_rvectors_;
  CsrMatrix matrix_;
};

class LayeredGraphEstimator final : public SparsityEstimator {
 public:
  static constexpr int kDefaultRounds = 32;

  explicit LayeredGraphEstimator(int rounds = kDefaultRounds,
                                 uint64_t seed = 42);

  std::string Name() const override { return "LGraph"; }
  int rounds() const { return rounds_; }

  bool SupportsOp(OpKind op) const override {
    return op == OpKind::kMatMul;
  }
  bool SupportsChains() const override { return true; }
  SynopsisPtr Build(const Matrix& a) override;
  double EstimateSparsity(OpKind op, const SynopsisPtr& a,
                          const SynopsisPtr& b, int64_t out_rows,
                          int64_t out_cols) override;
  SynopsisPtr Propagate(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                        int64_t out_rows, int64_t out_cols) override;

 private:
  // Min-propagates `source` r-vectors (per row of `edges`) through the
  // non-zeros of `edges`, yielding r-vectors per column of `edges`.
  std::vector<float> PropagateThroughEdges(const std::vector<float>& source,
                                           const CsrMatrix& edges) const;

  // Estimated total non-zeros from column r-vectors (Eq. 6 numerator).
  double EstimateNnzFromRVectors(const std::vector<float>& rvectors) const;

  int rounds_;
  Rng rng_;
};

}  // namespace mnc

#endif  // MNC_ESTIMATORS_LAYERED_GRAPH_ESTIMATOR_H_
