// Naïve metadata estimators (§2.1 of the paper).
//
// These derive the output sparsity solely from the input sparsities, as
// available from metadata at compile time:
//   - MetaAcEstimator (E_ac, Eq. 1): the unbiased average-case estimator
//     assuming uniformly distributed non-zeros,
//   - MetaWcEstimator (E_wc, Eq. 2): the worst-case upper-bound estimator
//     assuming adversarially aligned non-zeros.
// Both are O(1) in space and time and support all operations and chains.

#ifndef MNC_ESTIMATORS_META_ESTIMATOR_H_
#define MNC_ESTIMATORS_META_ESTIMATOR_H_

#include "mnc/estimators/sparsity_estimator.h"

namespace mnc {

// Synopsis: just the shape and the scalar sparsity.
class MetaSynopsis final : public EstimatorSynopsis {
 public:
  MetaSynopsis(int64_t rows, int64_t cols, double sparsity)
      : EstimatorSynopsis(rows, cols), sparsity_(sparsity) {}

  double sparsity() const { return sparsity_; }
  int64_t SizeBytes() const override {
    return static_cast<int64_t>(sizeof(MetaSynopsis));
  }

 private:
  double sparsity_;
};

class MetaEstimatorBase : public SparsityEstimator {
 public:
  bool SupportsOp(OpKind op) const override;
  bool SupportsChains() const override { return true; }
  SynopsisPtr Build(const Matrix& a) override;
  double EstimateSparsity(OpKind op, const SynopsisPtr& a,
                          const SynopsisPtr& b, int64_t out_rows,
                          int64_t out_cols) override;
  SynopsisPtr Propagate(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                        int64_t out_rows, int64_t out_cols) override;

 protected:
  // Product estimate given input sparsities and the common dimension n.
  virtual double EstimateProduct(double s_a, double s_b, double n) const = 0;
  // Element-wise estimates.
  virtual double EstimateAdd(double s_a, double s_b) const = 0;
  virtual double EstimateMult(double s_a, double s_b) const = 0;
};

// Average case, Eq. 1: s_C = 1 - (1 - s_A s_B)^n.
class MetaAcEstimator final : public MetaEstimatorBase {
 public:
  std::string Name() const override { return "MetaAC"; }

 protected:
  double EstimateProduct(double s_a, double s_b, double n) const override;
  double EstimateAdd(double s_a, double s_b) const override;
  double EstimateMult(double s_a, double s_b) const override;
};

// Worst case, Eq. 2: s_C = min(1, s_A n) * min(1, s_B n).
class MetaWcEstimator final : public MetaEstimatorBase {
 public:
  std::string Name() const override { return "MetaWC"; }

 protected:
  double EstimateProduct(double s_a, double s_b, double n) const override;
  double EstimateAdd(double s_a, double s_b) const override;
  double EstimateMult(double s_a, double s_b) const override;
};

// Ultra-sparse simplification (footnote 2 of the paper, after [Cohen'98]):
// s_C = s_A s_B n — the first-order Taylor expansion of Eq. 1, accurate
// when collisions are negligible and ~free to compute. Element-wise
// estimates match the average case.
class MetaUltraSparseEstimator final : public MetaEstimatorBase {
 public:
  std::string Name() const override { return "MetaUS"; }

 protected:
  double EstimateProduct(double s_a, double s_b, double n) const override;
  double EstimateAdd(double s_a, double s_b) const override;
  double EstimateMult(double s_a, double s_b) const override;
};

}  // namespace mnc

#endif  // MNC_ESTIMATORS_META_ESTIMATOR_H_
