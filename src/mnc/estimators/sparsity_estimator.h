// Common interface for sparsity estimators (§2 of the paper).
//
// Every estimator follows the same life cycle the paper measures:
//   1. Build(): construct a synopsis from a base matrix ("construction"
//      in Figures 7(b)/8(b)),
//   2. EstimateSparsity(): estimate the output sparsity of one operation
//      from input synopses ("estimation" in Figures 7(c)/8(c)),
//   3. Propagate(): derive a synopsis for the operation's output so that
//      chains/DAGs can be estimated recursively (§3.3).
// Estimators report which operations they support: e.g., the sampling-based
// estimator applies to single matrix products only, and the layered graph
// supports product chains but no element-wise operations — exactly the
// applicability matrix of Table 1 and §6.6.

#ifndef MNC_ESTIMATORS_SPARSITY_ESTIMATOR_H_
#define MNC_ESTIMATORS_SPARSITY_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mnc/matrix/matrix.h"
#include "mnc/util/check.h"
#include "mnc/util/status.h"

namespace mnc {

// Operations covered by the SparsEst benchmark (§4/§5), plus the
// "additional operations" extension of §8: element-wise min/max (pattern
// intersection/union for non-negative inputs), scalar scaling, and row/
// column aggregations.
enum class OpKind {
  kMatMul,
  kEWiseAdd,
  kEWiseMult,
  kEWiseMin,
  kEWiseMax,
  kTranspose,
  kReshape,
  kDiag,
  kRBind,
  kCBind,
  kNotEqualZero,
  kEqualZero,
  kScale,    // alpha * A with alpha != 0 (structure-preserving)
  kRowSums,  // m x 1 aggregation
  kColSums,  // 1 x n aggregation
};

// Human-readable name ("MatMul", "EWiseAdd", ...).
const char* OpKindName(OpKind op);

// Opaque, estimator-specific synopsis of one (possibly intermediate) matrix.
class EstimatorSynopsis {
 public:
  EstimatorSynopsis(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {}
  virtual ~EstimatorSynopsis() = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  // In-memory footprint of the synopsis (Fig. 9).
  virtual int64_t SizeBytes() const = 0;

 private:
  int64_t rows_;
  int64_t cols_;
};

using SynopsisPtr = std::shared_ptr<const EstimatorSynopsis>;

class SparsityEstimator {
 public:
  virtual ~SparsityEstimator() = default;

  virtual std::string Name() const = 0;

  // True if the estimator defines EstimateSparsity/Propagate for `op`.
  virtual bool SupportsOp(OpKind op) const = 0;

  // True if synopses can be propagated through supported ops (column ® of
  // Table 1); false for single-operation estimators like sampling.
  virtual bool SupportsChains() const = 0;

  // Builds a synopsis from a base matrix.
  virtual SynopsisPtr Build(const Matrix& a) = 0;

  // Estimates the output sparsity of `op` applied to the inputs summarized
  // by `a` (and `b` for binary ops; pass nullptr for unary ops). out_rows/
  // out_cols give the output shape (needed for reshape; redundant but
  // convenient elsewhere). Requires SupportsOp(op).
  virtual double EstimateSparsity(OpKind op, const SynopsisPtr& a,
                                  const SynopsisPtr& b, int64_t out_rows,
                                  int64_t out_cols) = 0;

  // Derives the output synopsis of `op` (same contract as EstimateSparsity).
  // Requires SupportsOp(op) and SupportsChains().
  virtual SynopsisPtr Propagate(OpKind op, const SynopsisPtr& a,
                                const SynopsisPtr& b, int64_t out_rows,
                                int64_t out_cols) = 0;

  // Bytes occupied by `s` (0 for null). The default defers to the
  // synopsis's own SizeBytes(); estimators with out-of-synopsis state (e.g.
  // shared dictionaries) can override to account for it. Memory budgets
  // (fallback tier budgets, the estimation service's memo budget) and the
  // Fig. 9 measured-size report charge synopses through this method.
  virtual int64_t SynopsisBytes(const SynopsisPtr& s) const {
    return s == nullptr ? 0 : s->SizeBytes();
  }

 protected:
  // Downcast helper with a checked type assumption: synopses passed back
  // into an estimator must have been produced by that estimator.
  template <typename T>
  static const T& As(const SynopsisPtr& s) {
    MNC_CHECK(s != nullptr);
    const T* typed = dynamic_cast<const T*>(s.get());
    MNC_CHECK_MSG(typed != nullptr, "synopsis type mismatch");
    return *typed;
  }
};

// Output shape of `op` for inputs of the given shapes. reshape_rows/cols are
// only read for kReshape. Aborts on dimension mismatch — the same
// shape-inference rules the IR uses.
struct Shape {
  int64_t rows;
  int64_t cols;
};
Shape InferOutputShape(OpKind op, Shape a, const Shape* b,
                       int64_t reshape_rows = -1, int64_t reshape_cols = -1);

// Recoverable twin of InferOutputShape for untrusted expressions (e.g.
// parsed from user input): returns InvalidArgument naming the operation and
// the disagreeing dimensions instead of aborting.
StatusOr<Shape> TryInferOutputShape(OpKind op, Shape a, const Shape* b,
                                    int64_t reshape_rows = -1,
                                    int64_t reshape_cols = -1);

}  // namespace mnc

#endif  // MNC_ESTIMATORS_SPARSITY_ESTIMATOR_H_
