#include "mnc/estimators/sparsity_estimator.h"

namespace mnc {

const char* OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kMatMul:
      return "MatMul";
    case OpKind::kEWiseAdd:
      return "EWiseAdd";
    case OpKind::kEWiseMult:
      return "EWiseMult";
    case OpKind::kTranspose:
      return "Transpose";
    case OpKind::kReshape:
      return "Reshape";
    case OpKind::kDiag:
      return "Diag";
    case OpKind::kRBind:
      return "RBind";
    case OpKind::kCBind:
      return "CBind";
    case OpKind::kNotEqualZero:
      return "NotEqualZero";
    case OpKind::kEqualZero:
      return "EqualZero";
    case OpKind::kEWiseMin:
      return "EWiseMin";
    case OpKind::kEWiseMax:
      return "EWiseMax";
    case OpKind::kScale:
      return "Scale";
    case OpKind::kRowSums:
      return "RowSums";
    case OpKind::kColSums:
      return "ColSums";
  }
  return "Unknown";
}

Shape InferOutputShape(OpKind op, Shape a, const Shape* b,
                       int64_t reshape_rows, int64_t reshape_cols) {
  StatusOr<Shape> shape =
      TryInferOutputShape(op, a, b, reshape_rows, reshape_cols);
  MNC_CHECK_MSG(shape.ok(), "shape inference failed");
  return *shape;
}

StatusOr<Shape> TryInferOutputShape(OpKind op, Shape a, const Shape* b,
                                    int64_t reshape_rows,
                                    int64_t reshape_cols) {
  const std::string name = OpKindName(op);
  auto shape_str = [](const Shape& s) {
    return std::to_string(s.rows) + " x " + std::to_string(s.cols);
  };
  auto missing_b = [&]() {
    return Status::InvalidArgument(name + " needs a second operand");
  };
  switch (op) {
    case OpKind::kMatMul:
      if (b == nullptr) return missing_b();
      if (a.cols != b->rows) {
        return Status::InvalidArgument(
            name + ": inner dimensions disagree (" + shape_str(a) + " vs " +
            shape_str(*b) + ")");
      }
      return Shape{a.rows, b->cols};
    case OpKind::kEWiseAdd:
    case OpKind::kEWiseMult:
    case OpKind::kEWiseMin:
    case OpKind::kEWiseMax:
      if (b == nullptr) return missing_b();
      if (a.rows != b->rows || a.cols != b->cols) {
        return Status::InvalidArgument(name + ": operand shapes disagree (" +
                                       shape_str(a) + " vs " + shape_str(*b) +
                                       ")");
      }
      return a;
    case OpKind::kTranspose:
      return Shape{a.cols, a.rows};
    case OpKind::kReshape:
      if (reshape_rows < 0 || reshape_cols < 0) {
        return Status::InvalidArgument(name + ": negative target shape");
      }
      if (a.rows * a.cols != reshape_rows * reshape_cols) {
        return Status::InvalidArgument(
            name + ": cell count changes from " + shape_str(a) + " to " +
            std::to_string(reshape_rows) + " x " +
            std::to_string(reshape_cols));
      }
      return Shape{reshape_rows, reshape_cols};
    case OpKind::kDiag:
      if (a.cols == 1) return Shape{a.rows, a.rows};
      if (a.rows != a.cols) {
        return Status::InvalidArgument(
            name + ": input must be square or a column vector, got " +
            shape_str(a));
      }
      return Shape{a.rows, 1};
    case OpKind::kRBind:
      if (b == nullptr) return missing_b();
      if (a.cols != b->cols) {
        return Status::InvalidArgument(name + ": column counts disagree (" +
                                       shape_str(a) + " vs " + shape_str(*b) +
                                       ")");
      }
      return Shape{a.rows + b->rows, a.cols};
    case OpKind::kCBind:
      if (b == nullptr) return missing_b();
      if (a.rows != b->rows) {
        return Status::InvalidArgument(name + ": row counts disagree (" +
                                       shape_str(a) + " vs " + shape_str(*b) +
                                       ")");
      }
      return Shape{a.rows, a.cols + b->cols};
    case OpKind::kNotEqualZero:
    case OpKind::kEqualZero:
    case OpKind::kScale:
      return a;
    case OpKind::kRowSums:
      return Shape{a.rows, 1};
    case OpKind::kColSums:
      return Shape{1, a.cols};
  }
  return Status::InvalidArgument("unknown operation kind");
}

}  // namespace mnc
