#include "mnc/estimators/sparsity_estimator.h"

namespace mnc {

const char* OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kMatMul:
      return "MatMul";
    case OpKind::kEWiseAdd:
      return "EWiseAdd";
    case OpKind::kEWiseMult:
      return "EWiseMult";
    case OpKind::kTranspose:
      return "Transpose";
    case OpKind::kReshape:
      return "Reshape";
    case OpKind::kDiag:
      return "Diag";
    case OpKind::kRBind:
      return "RBind";
    case OpKind::kCBind:
      return "CBind";
    case OpKind::kNotEqualZero:
      return "NotEqualZero";
    case OpKind::kEqualZero:
      return "EqualZero";
    case OpKind::kEWiseMin:
      return "EWiseMin";
    case OpKind::kEWiseMax:
      return "EWiseMax";
    case OpKind::kScale:
      return "Scale";
    case OpKind::kRowSums:
      return "RowSums";
    case OpKind::kColSums:
      return "ColSums";
  }
  return "Unknown";
}

Shape InferOutputShape(OpKind op, Shape a, const Shape* b,
                       int64_t reshape_rows, int64_t reshape_cols) {
  switch (op) {
    case OpKind::kMatMul:
      MNC_CHECK(b != nullptr);
      MNC_CHECK_EQ(a.cols, b->rows);
      return {a.rows, b->cols};
    case OpKind::kEWiseAdd:
    case OpKind::kEWiseMult:
    case OpKind::kEWiseMin:
    case OpKind::kEWiseMax:
      MNC_CHECK(b != nullptr);
      MNC_CHECK_EQ(a.rows, b->rows);
      MNC_CHECK_EQ(a.cols, b->cols);
      return a;
    case OpKind::kTranspose:
      return {a.cols, a.rows};
    case OpKind::kReshape:
      MNC_CHECK_GE(reshape_rows, 0);
      MNC_CHECK_GE(reshape_cols, 0);
      MNC_CHECK_EQ(a.rows * a.cols, reshape_rows * reshape_cols);
      return {reshape_rows, reshape_cols};
    case OpKind::kDiag:
      if (a.cols == 1) return {a.rows, a.rows};
      MNC_CHECK_EQ(a.rows, a.cols);
      return {a.rows, 1};
    case OpKind::kRBind:
      MNC_CHECK(b != nullptr);
      MNC_CHECK_EQ(a.cols, b->cols);
      return {a.rows + b->rows, a.cols};
    case OpKind::kCBind:
      MNC_CHECK(b != nullptr);
      MNC_CHECK_EQ(a.rows, b->rows);
      return {a.rows, a.cols + b->cols};
    case OpKind::kNotEqualZero:
    case OpKind::kEqualZero:
    case OpKind::kScale:
      return a;
    case OpKind::kRowSums:
      return {a.rows, 1};
    case OpKind::kColSums:
      return {1, a.cols};
  }
  MNC_CHECK_MSG(false, "unreachable");
  return a;
}

}  // namespace mnc
