#include "mnc/estimators/bitset_estimator.h"

#include <bit>

#include "mnc/kernels/kernels.h"

namespace mnc {

BitMatrix::BitMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64) {
  MNC_CHECK_GE(rows, 0);
  MNC_CHECK_GE(cols, 0);
  words_.assign(static_cast<size_t>(rows * words_per_row_), 0);
}

BitMatrix BitMatrix::FromMatrix(const Matrix& m) {
  BitMatrix bits(m.rows(), m.cols());
  if (m.is_dense()) {
    const DenseMatrix& d = m.dense();
    for (int64_t i = 0; i < d.rows(); ++i) {
      const double* r = d.row(i);
      for (int64_t j = 0; j < d.cols(); ++j) {
        if (r[j] != 0.0) bits.Set(i, j);
      }
    }
  } else {
    const CsrMatrix& s = m.csr();
    for (int64_t i = 0; i < s.rows(); ++i) {
      for (int64_t j : s.RowIndices(i)) bits.Set(i, j);
    }
  }
  return bits;
}

bool BitMatrix::Get(int64_t i, int64_t j) const {
  MNC_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  return (row(i)[j / 64] >> (j % 64)) & 1;
}

void BitMatrix::Set(int64_t i, int64_t j) {
  MNC_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  row(i)[j / 64] |= uint64_t{1} << (j % 64);
}

int64_t BitMatrix::PopCount() const {
  return kernels::Active().popcount_words(
      words_.data(), static_cast<int64_t>(words_.size()));
}

int64_t BitMatrix::AndPopCount(const BitMatrix& other) const {
  MNC_CHECK_EQ(rows_, other.rows_);
  MNC_CHECK_EQ(cols_, other.cols_);
  return kernels::Active().and_popcount_words(
      words_.data(), other.words_.data(), static_cast<int64_t>(words_.size()));
}

int64_t BitMatrix::OrPopCount(const BitMatrix& other) const {
  // |A u B| = |A| + |B| - |A n B|, so the union popcount also needs no
  // materialized result matrix.
  return PopCount() + other.PopCount() - AndPopCount(other);
}

BitMatrix BitMatrix::MultiplyBool(const BitMatrix& other,
                                  ThreadPool* pool) const {
  MNC_CHECK_EQ(cols_, other.rows_);
  BitMatrix out(rows_, other.cols_);
  const int64_t out_words = out.words_per_row_;
  const kernels::KernelTable& kt = kernels::Active();
  auto compute_rows = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      uint64_t* oi = out.row(i);
      const uint64_t* ai = row(i);
      for (int64_t kw = 0; kw < words_per_row_; ++kw) {
        uint64_t word = ai[kw];
        while (word != 0) {
          const int bit = std::countr_zero(word);
          word &= word - 1;
          kt.or_into(oi, other.row(kw * 64 + bit), out_words);
        }
      }
    }
  };
  if (pool != nullptr) {
    // Grain-based chunking (up to 4 chunks per worker) absorbs row skew —
    // popcount cost varies with row density — better than one fixed chunk
    // per worker; chunk failures propagate here as exceptions.
    pool->ParallelFor(0, rows_, /*grain=*/16, compute_rows);
  } else {
    compute_rows(0, rows_);
  }
  return out;
}

BitMatrix BitMatrix::Or(const BitMatrix& other) const {
  MNC_CHECK_EQ(rows_, other.rows_);
  MNC_CHECK_EQ(cols_, other.cols_);
  BitMatrix out(rows_, cols_);
  kernels::Active().or_words(out.words_.data(), words_.data(),
                             other.words_.data(),
                             static_cast<int64_t>(words_.size()));
  return out;
}

BitMatrix BitMatrix::And(const BitMatrix& other) const {
  MNC_CHECK_EQ(rows_, other.rows_);
  MNC_CHECK_EQ(cols_, other.cols_);
  BitMatrix out(rows_, cols_);
  kernels::Active().and_words(out.words_.data(), words_.data(),
                              other.words_.data(),
                              static_cast<int64_t>(words_.size()));
  return out;
}

BitMatrix BitMatrix::Not() const {
  BitMatrix out(rows_, cols_);
  for (int64_t i = 0; i < rows_; ++i) {
    const uint64_t* src = row(i);
    uint64_t* dst = out.row(i);
    for (int64_t w = 0; w < words_per_row_; ++w) dst[w] = ~src[w];
    // Clear the padding bits past cols_ in the last word.
    const int tail = static_cast<int>(cols_ % 64);
    if (tail != 0 && words_per_row_ > 0) {
      dst[words_per_row_ - 1] &= (uint64_t{1} << tail) - 1;
    }
  }
  return out;
}

BitMatrix BitMatrix::Transpose() const {
  BitMatrix out(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i) {
    const uint64_t* ri = row(i);
    for (int64_t kw = 0; kw < words_per_row_; ++kw) {
      uint64_t word = ri[kw];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        out.Set(kw * 64 + bit, i);
      }
    }
  }
  return out;
}

BitMatrix BitMatrix::Reshape(int64_t k, int64_t l) const {
  MNC_CHECK_EQ(rows_ * cols_, k * l);
  BitMatrix out(k, l);
  for (int64_t i = 0; i < rows_; ++i) {
    const uint64_t* ri = row(i);
    for (int64_t kw = 0; kw < words_per_row_; ++kw) {
      uint64_t word = ri[kw];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        const int64_t linear = i * cols_ + kw * 64 + bit;
        out.Set(linear / l, linear % l);
      }
    }
  }
  return out;
}

bool BitsetEstimator::SupportsOp(OpKind) const { return true; }

SynopsisPtr BitsetEstimator::Build(const Matrix& a) {
  if (max_synopsis_bytes_ >= 0) {
    const int64_t words_per_row = (a.cols() + 63) / 64;
    const int64_t bytes =
        a.rows() * words_per_row * static_cast<int64_t>(sizeof(uint64_t));
    if (bytes > max_synopsis_bytes_) return nullptr;
  }
  return std::make_shared<BitsetSynopsis>(BitMatrix::FromMatrix(a));
}

BitMatrix BitsetEstimator::Apply(OpKind op, const SynopsisPtr& a,
                                 const SynopsisPtr& b, int64_t out_rows,
                                 int64_t out_cols) {
  const BitMatrix& ba = As<BitsetSynopsis>(a).bits();
  switch (op) {
    case OpKind::kMatMul:
      return ba.MultiplyBool(As<BitsetSynopsis>(b).bits(), pool_);
    case OpKind::kEWiseAdd:
    case OpKind::kEWiseMax:  // union pattern (non-negative inputs)
      return ba.Or(As<BitsetSynopsis>(b).bits());
    case OpKind::kEWiseMult:
    case OpKind::kEWiseMin:  // intersection pattern (non-negative inputs)
      return ba.And(As<BitsetSynopsis>(b).bits());
    case OpKind::kScale:
      return ba;  // alpha != 0 preserves the pattern
    case OpKind::kRowSums: {
      BitMatrix out(ba.rows(), 1);
      for (int64_t i = 0; i < ba.rows(); ++i) {
        const uint64_t* ri = ba.row(i);
        for (int64_t w = 0; w < ba.words_per_row(); ++w) {
          if (ri[w] != 0) {
            out.Set(i, 0);
            break;
          }
        }
      }
      return out;
    }
    case OpKind::kColSums: {
      BitMatrix out(1, ba.cols());
      uint64_t* o = out.row(0);
      const kernels::KernelTable& kt = kernels::Active();
      for (int64_t i = 0; i < ba.rows(); ++i) {
        kt.or_into(o, ba.row(i), ba.words_per_row());
      }
      return out;
    }
    case OpKind::kTranspose:
      return ba.Transpose();
    case OpKind::kReshape:
      return ba.Reshape(out_rows, out_cols);
    case OpKind::kNotEqualZero:
      return ba;
    case OpKind::kEqualZero:
      return ba.Not();
    case OpKind::kDiag: {
      if (ba.cols() == 1) {
        BitMatrix out(ba.rows(), ba.rows());
        for (int64_t i = 0; i < ba.rows(); ++i) {
          if (ba.Get(i, 0)) out.Set(i, i);
        }
        return out;
      }
      BitMatrix out(ba.rows(), 1);
      for (int64_t i = 0; i < ba.rows(); ++i) {
        if (ba.Get(i, i)) out.Set(i, 0);
      }
      return out;
    }
    case OpKind::kRBind: {
      const BitMatrix& bb = As<BitsetSynopsis>(b).bits();
      MNC_CHECK_EQ(ba.cols(), bb.cols());
      BitMatrix out(ba.rows() + bb.rows(), ba.cols());
      for (int64_t i = 0; i < ba.rows(); ++i) {
        std::copy(ba.row(i), ba.row(i) + ba.words_per_row(), out.row(i));
      }
      for (int64_t i = 0; i < bb.rows(); ++i) {
        std::copy(bb.row(i), bb.row(i) + bb.words_per_row(),
                  out.row(ba.rows() + i));
      }
      return out;
    }
    case OpKind::kCBind: {
      const BitMatrix& bb = As<BitsetSynopsis>(b).bits();
      MNC_CHECK_EQ(ba.rows(), bb.rows());
      BitMatrix out(ba.rows(), ba.cols() + bb.cols());
      for (int64_t i = 0; i < ba.rows(); ++i) {
        for (int64_t j = 0; j < ba.cols(); ++j) {
          if (ba.Get(i, j)) out.Set(i, j);
        }
        for (int64_t j = 0; j < bb.cols(); ++j) {
          if (bb.Get(i, j)) out.Set(i, ba.cols() + j);
        }
      }
      return out;
    }
  }
  MNC_CHECK_MSG(false, "unreachable");
  return BitMatrix(0, 0);
}

double BitsetEstimator::EstimateSparsity(OpKind op, const SynopsisPtr& a,
                                         const SynopsisPtr& b,
                                         int64_t out_rows, int64_t out_cols) {
  // Elementwise intersections/unions reduce straight to a fused popcount —
  // no output bit-matrix is materialized (same exact integer count).
  if (op == OpKind::kEWiseMult || op == OpKind::kEWiseMin ||
      op == OpKind::kEWiseAdd || op == OpKind::kEWiseMax) {
    const BitMatrix& ba = As<BitsetSynopsis>(a).bits();
    const BitMatrix& bb = As<BitsetSynopsis>(b).bits();
    const double cells =
        static_cast<double>(ba.rows()) * static_cast<double>(ba.cols());
    if (cells == 0.0) return 0.0;
    const int64_t count =
        (op == OpKind::kEWiseMult || op == OpKind::kEWiseMin)
            ? ba.AndPopCount(bb)
            : ba.OrPopCount(bb);
    return static_cast<double>(count) / cells;
  }
  const BitMatrix out = Apply(op, a, b, out_rows, out_cols);
  const double cells =
      static_cast<double>(out.rows()) * static_cast<double>(out.cols());
  if (cells == 0.0) return 0.0;
  return static_cast<double>(out.PopCount()) / cells;
}

SynopsisPtr BitsetEstimator::Propagate(OpKind op, const SynopsisPtr& a,
                                       const SynopsisPtr& b, int64_t out_rows,
                                       int64_t out_cols) {
  return std::make_shared<BitsetSynopsis>(
      Apply(op, a, b, out_rows, out_cols));
}

}  // namespace mnc
