// Naïve bitset estimator E_bmm (§2.1, Eq. 3).
//
// Builds boolean bit-matrices of the inputs and evaluates operations exactly
// in boolean algebra (multiply = AND + OR-reduce, add = OR, ...). Always
// exact under A1/A2, but space is proportional to the dense size / 64 and a
// boolean product costs O(m n l / 64) — the "accurate but expensive" end of
// the spectrum in Figure 2. The optional thread pool reproduces the
// multi-threaded variant of Appendix B.

#ifndef MNC_ESTIMATORS_BITSET_ESTIMATOR_H_
#define MNC_ESTIMATORS_BITSET_ESTIMATOR_H_

#include <vector>

#include "mnc/estimators/sparsity_estimator.h"
#include "mnc/util/thread_pool.h"

namespace mnc {

// Dense bit matrix with 64 cells per word, row-major.
class BitMatrix {
 public:
  BitMatrix(int64_t rows, int64_t cols);

  static BitMatrix FromMatrix(const Matrix& m);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t words_per_row() const { return words_per_row_; }

  bool Get(int64_t i, int64_t j) const;
  void Set(int64_t i, int64_t j);

  const uint64_t* row(int64_t i) const {
    return words_.data() + i * words_per_row_;
  }
  uint64_t* row(int64_t i) { return words_.data() + i * words_per_row_; }

  // Number of set bits.
  int64_t PopCount() const;

  // Fused popcount(this AND/OR other) without materializing the result —
  // the Eq. 3 intersection/union cardinalities. Requires equal shapes.
  int64_t AndPopCount(const BitMatrix& other) const;
  int64_t OrPopCount(const BitMatrix& other) const;

  // Boolean matrix product (AND/OR), optionally parallel over output rows.
  BitMatrix MultiplyBool(const BitMatrix& other,
                         ThreadPool* pool = nullptr) const;

  BitMatrix Or(const BitMatrix& other) const;
  BitMatrix And(const BitMatrix& other) const;
  BitMatrix Not() const;  // flips within [0, cols)
  BitMatrix Transpose() const;
  BitMatrix Reshape(int64_t k, int64_t l) const;  // row-major relinearization

  int64_t SizeBytes() const {
    return static_cast<int64_t>(words_.size() * sizeof(uint64_t));
  }

 private:
  int64_t rows_;
  int64_t cols_;
  int64_t words_per_row_;
  std::vector<uint64_t> words_;
};

class BitsetSynopsis final : public EstimatorSynopsis {
 public:
  explicit BitsetSynopsis(BitMatrix bits)
      : EstimatorSynopsis(bits.rows(), bits.cols()), bits_(std::move(bits)) {}

  const BitMatrix& bits() const { return bits_; }
  int64_t SizeBytes() const override { return bits_.SizeBytes(); }

 private:
  BitMatrix bits_;
};

class BitsetEstimator final : public SparsityEstimator {
 public:
  // pool == nullptr: single-threaded (the default experimental setup);
  // non-null: the Appendix-B multi-threaded variant. max_synopsis_bytes
  // caps the bit-matrix size (< 0 = unlimited): with a cap, Build() returns
  // nullptr for oversized matrices — the "exceeds available memory" failures
  // the paper reports for B2.1/B2.3/B3.1/B3.4.
  explicit BitsetEstimator(ThreadPool* pool = nullptr,
                           int64_t max_synopsis_bytes = -1)
      : pool_(pool), max_synopsis_bytes_(max_synopsis_bytes) {}

  std::string Name() const override {
    return pool_ != nullptr ? "Bitset(MT)" : "Bitset";
  }
  bool SupportsOp(OpKind op) const override;
  bool SupportsChains() const override { return true; }
  SynopsisPtr Build(const Matrix& a) override;
  double EstimateSparsity(OpKind op, const SynopsisPtr& a,
                          const SynopsisPtr& b, int64_t out_rows,
                          int64_t out_cols) override;
  SynopsisPtr Propagate(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                        int64_t out_rows, int64_t out_cols) override;

 private:
  BitMatrix Apply(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                  int64_t out_rows, int64_t out_cols);

  ThreadPool* pool_;
  int64_t max_synopsis_bytes_;
};

}  // namespace mnc

#endif  // MNC_ESTIMATORS_BITSET_ESTIMATOR_H_
