#include "mnc/estimators/layered_graph_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mnc {

LayeredGraphEstimator::LayeredGraphEstimator(int rounds, uint64_t seed)
    : rounds_(rounds), rng_(seed) {
  MNC_CHECK_GE(rounds, 2);
}

std::vector<float> LayeredGraphEstimator::PropagateThroughEdges(
    const std::vector<float>& source, const CsrMatrix& edges) const {
  const size_t r = static_cast<size_t>(rounds_);
  std::vector<float> out(static_cast<size_t>(edges.cols()) * r,
                         std::numeric_limits<float>::infinity());
  for (int64_t i = 0; i < edges.rows(); ++i) {
    const float* src = source.data() + static_cast<size_t>(i) * r;
    for (int64_t j : edges.RowIndices(i)) {
      float* dst = out.data() + static_cast<size_t>(j) * r;
      for (size_t t = 0; t < r; ++t) {
        dst[t] = std::min(dst[t], src[t]);
      }
    }
  }
  return out;
}

double LayeredGraphEstimator::EstimateNnzFromRVectors(
    const std::vector<float>& rvectors) const {
  const size_t r = static_cast<size_t>(rounds_);
  double nnz = 0.0;
  for (size_t base = 0; base < rvectors.size(); base += r) {
    double sum = 0.0;
    bool reachable = true;
    for (size_t t = 0; t < r; ++t) {
      const float v = rvectors[base + t];
      if (!std::isfinite(v)) {
        reachable = false;
        break;
      }
      sum += static_cast<double>(v);
    }
    if (reachable && sum > 0.0) {
      nnz += static_cast<double>(r - 1) / sum;
    }
  }
  return nnz;
}

SynopsisPtr LayeredGraphEstimator::Build(const Matrix& a) {
  CsrMatrix csr = a.AsCsr();
  // Leaf level: every row draws r i.i.d. Exp(1) values; one min-propagation
  // through this matrix's edges yields the column r-vectors.
  const size_t r = static_cast<size_t>(rounds_);
  std::vector<float> leaf(static_cast<size_t>(csr.rows()) * r);
  for (auto& v : leaf) v = static_cast<float>(rng_.Exponential(1.0));
  std::vector<float> columns = PropagateThroughEdges(leaf, csr);
  return std::make_shared<LayeredGraphSynopsis>(
      csr.rows(), csr.cols(), rounds_, std::move(columns), std::move(csr));
}

double LayeredGraphEstimator::EstimateSparsity(OpKind op,
                                               const SynopsisPtr& a,
                                               const SynopsisPtr& b,
                                               int64_t out_rows,
                                               int64_t out_cols) {
  MNC_CHECK(op == OpKind::kMatMul);
  const LayeredGraphSynopsis& sa = As<LayeredGraphSynopsis>(a);
  const LayeredGraphSynopsis& sb = As<LayeredGraphSynopsis>(b);
  MNC_CHECK_EQ(sa.cols(), sb.rows());
  const std::vector<float> columns =
      PropagateThroughEdges(sa.column_rvectors(), sb.matrix());
  const double cells =
      static_cast<double>(out_rows) * static_cast<double>(out_cols);
  if (cells == 0.0) return 0.0;
  return std::clamp(EstimateNnzFromRVectors(columns) / cells, 0.0, 1.0);
}

SynopsisPtr LayeredGraphEstimator::Propagate(OpKind op, const SynopsisPtr& a,
                                             const SynopsisPtr& b,
                                             int64_t out_rows,
                                             int64_t out_cols) {
  MNC_CHECK(op == OpKind::kMatMul);
  (void)out_rows;
  (void)out_cols;
  const LayeredGraphSynopsis& sa = As<LayeredGraphSynopsis>(a);
  const LayeredGraphSynopsis& sb = As<LayeredGraphSynopsis>(b);
  MNC_CHECK_EQ(sa.cols(), sb.rows());
  std::vector<float> columns =
      PropagateThroughEdges(sa.column_rvectors(), sb.matrix());
  // The propagated synopsis represents the chain prefix ending at sb: its
  // r-vectors summarize reachability from the leftmost leaves, and the next
  // product will traverse the *next* matrix's edges, so the carried matrix
  // is irrelevant — but the column count must match. We keep sb's matrix to
  // preserve the size accounting of Table 1.
  return std::make_shared<LayeredGraphSynopsis>(
      sa.rows(), sb.cols(), rounds_, std::move(columns), sb.matrix());
}

}  // namespace mnc
