#include "mnc/estimators/meta_estimator.h"

#include <algorithm>
#include <cmath>

namespace mnc {

bool MetaEstimatorBase::SupportsOp(OpKind) const { return true; }

SynopsisPtr MetaEstimatorBase::Build(const Matrix& a) {
  return std::make_shared<MetaSynopsis>(a.rows(), a.cols(), a.Sparsity());
}

double MetaEstimatorBase::EstimateSparsity(OpKind op, const SynopsisPtr& a,
                                           const SynopsisPtr& b,
                                           int64_t out_rows,
                                           int64_t out_cols) {
  const MetaSynopsis& sa = As<MetaSynopsis>(a);
  const double s_a = sa.sparsity();
  switch (op) {
    case OpKind::kMatMul:
      return std::clamp(EstimateProduct(s_a, As<MetaSynopsis>(b).sparsity(),
                                        static_cast<double>(sa.cols())),
                        0.0, 1.0);
    case OpKind::kEWiseAdd:
      return std::clamp(EstimateAdd(s_a, As<MetaSynopsis>(b).sparsity()), 0.0,
                        1.0);
    case OpKind::kEWiseMult:
    case OpKind::kEWiseMin:  // pattern intersection for non-negative inputs
      return std::clamp(EstimateMult(s_a, As<MetaSynopsis>(b).sparsity()),
                        0.0, 1.0);
    case OpKind::kEWiseMax:  // pattern union
      return std::clamp(EstimateAdd(s_a, As<MetaSynopsis>(b).sparsity()), 0.0,
                        1.0);
    case OpKind::kRowSums:
      // A row sum is non-zero when the row is non-empty: identical to a
      // product with an all-ones vector.
      return std::clamp(
          EstimateProduct(s_a, 1.0, static_cast<double>(sa.cols())), 0.0,
          1.0);
    case OpKind::kColSums:
      return std::clamp(
          EstimateProduct(s_a, 1.0, static_cast<double>(sa.rows())), 0.0,
          1.0);
    case OpKind::kTranspose:
    case OpKind::kReshape:
    case OpKind::kNotEqualZero:
    case OpKind::kScale:
      return s_a;  // Exact from metadata (§4.1).
    case OpKind::kEqualZero:
      return 1.0 - s_a;
    case OpKind::kDiag: {
      const double nnz = s_a * static_cast<double>(sa.rows()) *
                         static_cast<double>(sa.cols());
      if (sa.cols() == 1) {
        // Vector -> diagonal matrix: exact.
        return nnz / (static_cast<double>(out_rows) *
                      static_cast<double>(out_cols));
      }
      // Matrix -> diagonal vector: average case, P(diag cell != 0) = s_a.
      return s_a;
    }
    case OpKind::kRBind:
    case OpKind::kCBind: {
      const MetaSynopsis& sb = As<MetaSynopsis>(b);
      const double nnz =
          s_a * static_cast<double>(sa.rows()) *
              static_cast<double>(sa.cols()) +
          sb.sparsity() * static_cast<double>(sb.rows()) *
              static_cast<double>(sb.cols());
      return nnz /
             (static_cast<double>(out_rows) * static_cast<double>(out_cols));
    }
  }
  MNC_CHECK_MSG(false, "unreachable");
  return 0.0;
}

SynopsisPtr MetaEstimatorBase::Propagate(OpKind op, const SynopsisPtr& a,
                                         const SynopsisPtr& b,
                                         int64_t out_rows, int64_t out_cols) {
  const double s = EstimateSparsity(op, a, b, out_rows, out_cols);
  return std::make_shared<MetaSynopsis>(out_rows, out_cols, s);
}

double MetaAcEstimator::EstimateProduct(double s_a, double s_b,
                                        double n) const {
  // Computed in log space for numerical robustness with ultra-sparse inputs
  // and large n: 1 - exp(n * log1p(-s_a s_b)).
  const double cell = std::min(1.0, s_a * s_b);
  if (cell >= 1.0) return 1.0;
  return 1.0 - std::exp(n * std::log1p(-cell));
}

double MetaAcEstimator::EstimateAdd(double s_a, double s_b) const {
  return s_a + s_b - s_a * s_b;
}

double MetaAcEstimator::EstimateMult(double s_a, double s_b) const {
  return s_a * s_b;
}

double MetaWcEstimator::EstimateProduct(double s_a, double s_b,
                                        double n) const {
  return std::min(1.0, s_a * n) * std::min(1.0, s_b * n);
}

double MetaWcEstimator::EstimateAdd(double s_a, double s_b) const {
  return std::min(1.0, s_a + s_b);
}

double MetaWcEstimator::EstimateMult(double s_a, double s_b) const {
  return std::min(s_a, s_b);
}

double MetaUltraSparseEstimator::EstimateProduct(double s_a, double s_b,
                                                 double n) const {
  return std::min(1.0, s_a * s_b * n);
}

double MetaUltraSparseEstimator::EstimateAdd(double s_a, double s_b) const {
  return s_a + s_b - s_a * s_b;
}

double MetaUltraSparseEstimator::EstimateMult(double s_a, double s_b) const {
  return s_a * s_b;
}

}  // namespace mnc
