// Graceful-degradation estimator chain.
//
// Production deployments cannot assume the precise synopsis path is always
// available: a sketch may fail to deserialize, a tier may be disabled by a
// fault (simulated here via fail points "estimator.<tier>"), or a synopsis
// may exceed its memory budget on a huge matrix. FallbackEstimator wraps an
// ordered chain of estimators — by default MNC -> DensityMap -> MetaAC,
// precise-and-structural down to O(1) metadata — and serves every request
// from the first tier that (a) has synopses for all inputs, (b) supports the
// operation, and (c) produces an estimate passing the sanity invariant
// (finite, in [0, 1]). Which tier served each estimate is recorded for
// observability, and per-tier counters expose build/estimate failures.

#ifndef MNC_ESTIMATORS_FALLBACK_ESTIMATOR_H_
#define MNC_ESTIMATORS_FALLBACK_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "mnc/estimators/sparsity_estimator.h"
#include "mnc/util/status.h"

namespace mnc {

// Composite synopsis: one slot per tier, aligned with the chain. A null slot
// means that tier could not summarize this matrix (disabled at build time,
// over budget, or lost during propagation) and is skipped at estimation.
class FallbackSynopsis final : public EstimatorSynopsis {
 public:
  FallbackSynopsis(int64_t rows, int64_t cols, std::vector<SynopsisPtr> tiers)
      : EstimatorSynopsis(rows, cols), tiers_(std::move(tiers)) {}

  const std::vector<SynopsisPtr>& tiers() const { return tiers_; }

  int64_t SizeBytes() const override {
    int64_t total = 0;
    for (const SynopsisPtr& t : tiers_) {
      if (t != nullptr) total += t->SizeBytes();
    }
    return total;
  }

 private:
  std::vector<SynopsisPtr> tiers_;
};

class FallbackEstimator final : public SparsityEstimator {
 public:
  struct TierConfig {
    std::unique_ptr<SparsityEstimator> estimator;
    // Per-matrix synopsis budget in bytes; < 0 means unlimited. A built
    // synopsis above budget is dropped, degrading that matrix to later
    // tiers.
    int64_t synopsis_budget_bytes = -1;
  };

  // Per-tier observability counters.
  struct TierStats {
    std::string name;        // tier estimator name
    std::string fail_point;  // "estimator.<name lowercased>"
    int64_t serves = 0;             // estimates served by this tier
    int64_t build_failures = 0;     // disabled or over-budget at Build
    int64_t estimate_failures = 0;  // skipped or failed sanity at estimate
  };

  // An estimate together with the tier that produced it.
  struct TieredEstimate {
    double sparsity = 1.0;
    int tier_index = -1;
    std::string tier_name;
  };

  // Default chain: MNC -> DensityMap -> MetaAC.
  FallbackEstimator();
  explicit FallbackEstimator(std::vector<TierConfig> tiers);

  std::string Name() const override { return "Fallback"; }
  bool SupportsOp(OpKind op) const override;     // true if any tier supports
  bool SupportsChains() const override;          // true if any tier chains
  SynopsisPtr Build(const Matrix& a) override;
  double EstimateSparsity(OpKind op, const SynopsisPtr& a,
                          const SynopsisPtr& b, int64_t out_rows,
                          int64_t out_cols) override;
  SynopsisPtr Propagate(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                        int64_t out_rows, int64_t out_cols) override;

  // Status-returning twin of EstimateSparsity: reports which tier served, or
  // kUnavailable when every tier was disabled, missing a synopsis, or failed
  // the sanity invariant. (EstimateSparsity itself degrades to the
  // conservative 1.0 upper bound in that case.)
  StatusOr<TieredEstimate> TryEstimateSparsity(OpKind op, const SynopsisPtr& a,
                                               const SynopsisPtr& b,
                                               int64_t out_rows,
                                               int64_t out_cols);

  int num_tiers() const { return static_cast<int>(tiers_.size()); }
  const std::vector<TierStats>& tier_stats() const { return stats_; }

  // Tier that served the most recent estimate ("" / -1 when the last
  // request degraded to the conservative bound).
  const std::string& last_serving_tier() const { return last_serving_tier_; }
  int last_serving_tier_index() const { return last_serving_tier_index_; }

 private:
  std::vector<TierConfig> tiers_;
  std::vector<TierStats> stats_;
  std::string last_serving_tier_;
  int last_serving_tier_index_ = -1;
};

}  // namespace mnc

#endif  // MNC_ESTIMATORS_FALLBACK_ESTIMATOR_H_
