// Hashing-and-sampling estimator (Appendix A) [Amossen, Campagna, Pagh,
// Algorithmica 2014].
//
// Views the boolean product as Z = ∪_k A_k × B_k (rows of A non-zero in
// column k crossed with columns of B non-zero in row k) and estimates the
// number of distinct output pairs with a KMV (k-minimum-values) synopsis:
// row and column indices are hashed to [0, 1); only rows/columns whose hash
// falls below an adaptive threshold p are paired, giving a p^2 Bernoulli
// sample of the distinct output cells; the k smallest distinct pair hashes
// estimate the sampled distinct count, which is scaled back by 1/p^2.
// Scan-based: O(d + nnz(A, B)) plus the bounded pair enumeration.

#ifndef MNC_ESTIMATORS_HASH_ESTIMATOR_H_
#define MNC_ESTIMATORS_HASH_ESTIMATOR_H_

#include "mnc/estimators/sampling_estimator.h"
#include "mnc/estimators/sparsity_estimator.h"

namespace mnc {

class HashEstimator final : public SparsityEstimator {
 public:
  static constexpr int64_t kDefaultMinValues = 1024;   // KMV buffer size
  static constexpr int64_t kDefaultPairBudget = 1 << 21;

  explicit HashEstimator(int64_t min_values = kDefaultMinValues,
                         int64_t pair_budget = kDefaultPairBudget,
                         uint64_t seed = 42);

  std::string Name() const override { return "Hash"; }
  bool SupportsOp(OpKind op) const override {
    return op == OpKind::kMatMul;
  }
  bool SupportsChains() const override { return false; }
  SynopsisPtr Build(const Matrix& a) override;
  double EstimateSparsity(OpKind op, const SynopsisPtr& a,
                          const SynopsisPtr& b, int64_t out_rows,
                          int64_t out_cols) override;
  SynopsisPtr Propagate(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                        int64_t out_rows, int64_t out_cols) override;

 private:
  double EstimateProduct(const Matrix& a, const Matrix& b);

  int64_t min_values_;
  int64_t pair_budget_;
  uint64_t seed_;
};

}  // namespace mnc

#endif  // MNC_ESTIMATORS_HASH_ESTIMATOR_H_
