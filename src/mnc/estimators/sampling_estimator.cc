#include "mnc/estimators/sampling_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mnc {

namespace {

// nnz per sampled column of `m`, computed in one pass over the non-zeros
// (the sample itself is never materialized).
std::vector<int64_t> SampledColumnCounts(const Matrix& m,
                                         const std::vector<int64_t>& sample) {
  std::vector<int64_t> position(static_cast<size_t>(m.cols()), -1);
  for (size_t s = 0; s < sample.size(); ++s) {
    position[static_cast<size_t>(sample[s])] = static_cast<int64_t>(s);
  }
  std::vector<int64_t> counts(sample.size(), 0);
  if (m.is_dense()) {
    const DenseMatrix& d = m.dense();
    for (int64_t i = 0; i < d.rows(); ++i) {
      const double* r = d.row(i);
      for (size_t s = 0; s < sample.size(); ++s) {
        if (r[sample[s]] != 0.0) ++counts[s];
      }
    }
  } else {
    const CsrMatrix& c = m.csr();
    for (int64_t j : c.col_idx()) {
      const int64_t pos = position[static_cast<size_t>(j)];
      if (pos >= 0) ++counts[static_cast<size_t>(pos)];
    }
  }
  return counts;
}

int64_t RowNnzOf(const Matrix& m, int64_t i) {
  if (m.is_dense()) {
    const double* r = m.dense().row(i);
    int64_t count = 0;
    for (int64_t j = 0; j < m.cols(); ++j) {
      if (r[j] != 0.0) ++count;
    }
    return count;
  }
  return m.csr().RowNnz(i);
}

}  // namespace

SamplingEstimator::SamplingEstimator(bool unbiased, double sample_fraction,
                                     uint64_t seed)
    : unbiased_(unbiased), sample_fraction_(sample_fraction), rng_(seed) {
  MNC_CHECK_GT(sample_fraction, 0.0);
  MNC_CHECK_LE(sample_fraction, 1.0);
}

bool SamplingEstimator::SupportsOp(OpKind op) const {
  return op == OpKind::kMatMul || op == OpKind::kEWiseMult;
}

SynopsisPtr SamplingEstimator::Build(const Matrix& a) {
  return std::make_shared<SamplingSynopsis>(a);
}

double SamplingEstimator::EstimateProduct(const SamplingSynopsis& a,
                                          const SamplingSynopsis& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const int64_t n = a.cols();
  const double m = static_cast<double>(a.rows());
  const double l = static_cast<double>(b.cols());
  const double ml = m * l;
  if (ml == 0.0 || n == 0) return 0.0;

  const int64_t sample_size = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(sample_fraction_ *
                                           static_cast<double>(n))));
  const std::vector<int64_t> sample =
      rng_.SampleWithoutReplacement(n, sample_size);

  // Per-column counts of the left input: exact for base matrices, the
  // Appendix-A uniform assumption nnz(M:k) = m * s for intermediates.
  std::vector<double> col_counts(sample.size());
  if (a.has_matrix()) {
    const std::vector<int64_t> exact =
        SampledColumnCounts(a.matrix(), sample);
    for (size_t s = 0; s < sample.size(); ++s) {
      col_counts[s] = static_cast<double>(exact[s]);
    }
  } else {
    std::fill(col_counts.begin(), col_counts.end(), m * a.sparsity());
  }
  auto row_count = [&](int64_t k) {
    return b.has_matrix() ? static_cast<double>(RowNnzOf(b.matrix(), k))
                          : l * b.sparsity();
  };

  if (!unbiased_) {
    // Eq. 5: sparsity of the largest sampled outer product.
    double best = 0.0;
    for (size_t s = 0; s < sample.size(); ++s) {
      best = std::max(best, col_counts[s] * row_count(sample[s]));
    }
    return best / ml;
  }

  // Eq. 16: 1 - (1 - vbar)^q * prod_k (1 - v_k), with q unsampled outer
  // products assumed drawn from the sampled empirical distribution.
  double log_zero = 0.0;
  double v_sum = 0.0;
  for (size_t s = 0; s < sample.size(); ++s) {
    const double vk =
        std::min(1.0, col_counts[s] * row_count(sample[s]) / ml);
    v_sum += vk;
    if (vk >= 1.0) return 1.0;
    log_zero += std::log1p(-vk);
  }
  const double v_mean = v_sum / static_cast<double>(sample.size());
  const double q = static_cast<double>(n - sample_size);
  if (v_mean >= 1.0) return 1.0;
  log_zero += q * std::log1p(-v_mean);
  return std::clamp(1.0 - std::exp(log_zero), 0.0, 1.0);
}

double SamplingEstimator::EstimateEWiseMult(const SamplingSynopsis& a,
                                            const SamplingSynopsis& b) {
  MNC_CHECK_EQ(a.rows(), b.rows());
  MNC_CHECK_EQ(a.cols(), b.cols());
  if (!a.has_matrix() || !b.has_matrix()) {
    // Chain intermediate: only the scalar sparsities are available, so fall
    // back to the average-case intersection.
    return std::clamp(a.sparsity() * b.sparsity(), 0.0, 1.0);
  }
  // Column-sampled exact intersection counts, scaled to all columns — the
  // same axis the product estimator samples (§2.3); used for the B2.5-style
  // element-wise use cases (§6.4). Column skew (e.g., the Mnist center
  // mask) makes this estimate noisy, which is the behavior the paper
  // reports.
  const int64_t n = a.cols();
  if (a.rows() == 0 || n == 0) return 0.0;
  const int64_t sample_size = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(sample_fraction_ *
                                           static_cast<double>(n))));
  const std::vector<int64_t> sample =
      rng_.SampleWithoutReplacement(n, sample_size);
  std::vector<char> sampled(static_cast<size_t>(n), 0);
  for (int64_t j : sample) sampled[static_cast<size_t>(j)] = 1;

  const CsrMatrix ca = a.matrix().AsCsr();
  const CsrMatrix cb = b.matrix().AsCsr();
  int64_t nnz = 0;
  for (int64_t i = 0; i < ca.rows(); ++i) {
    const auto ai = ca.RowIndices(i);
    const auto bi = cb.RowIndices(i);
    size_t ka = 0;
    size_t kb = 0;
    while (ka < ai.size() && kb < bi.size()) {
      if (ai[ka] < bi[kb]) {
        ++ka;
      } else if (bi[kb] < ai[ka]) {
        ++kb;
      } else {
        if (sampled[static_cast<size_t>(ai[ka])]) ++nnz;
        ++ka;
        ++kb;
      }
    }
  }
  const double scale =
      static_cast<double>(n) / static_cast<double>(sample_size);
  return static_cast<double>(nnz) * scale /
         (static_cast<double>(a.rows()) * static_cast<double>(n));
}

double SamplingEstimator::EstimateSparsity(OpKind op, const SynopsisPtr& a,
                                           const SynopsisPtr& b, int64_t,
                                           int64_t) {
  const SamplingSynopsis& sa = As<SamplingSynopsis>(a);
  const SamplingSynopsis& sb = As<SamplingSynopsis>(b);
  if (op == OpKind::kMatMul) return EstimateProduct(sa, sb);
  MNC_CHECK(op == OpKind::kEWiseMult);
  return EstimateEWiseMult(sa, sb);
}

SynopsisPtr SamplingEstimator::Propagate(OpKind op, const SynopsisPtr& a,
                                         const SynopsisPtr& b,
                                         int64_t out_rows, int64_t out_cols) {
  MNC_CHECK_MSG(unbiased_,
                "the biased sampling estimator applies to single operations "
                "only (SupportsChains() == false)");
  const double sparsity = EstimateSparsity(op, a, b, out_rows, out_cols);
  return std::make_shared<SamplingSynopsis>(out_rows, out_cols, sparsity);
}

}  // namespace mnc
