#include "mnc/estimators/hash_estimator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace mnc {

namespace {

// 64-bit mix (splitmix64 finalizer) used as the pairwise hash family.
uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Column -> sampled row-index lists of A (rows whose hash < p), built in one
// pass over the non-zeros.
std::vector<std::vector<int64_t>> SampledColumnLists(const CsrMatrix& a,
                                                     double p,
                                                     uint64_t hash_seed) {
  std::vector<std::vector<int64_t>> lists(static_cast<size_t>(a.cols()));
  for (int64_t i = 0; i < a.rows(); ++i) {
    const auto idx = a.RowIndices(i);
    if (idx.empty()) continue;
    if (ToUnit(Mix64(static_cast<uint64_t>(i) ^ hash_seed)) >= p) continue;
    for (int64_t j : idx) {
      lists[static_cast<size_t>(j)].push_back(i);
    }
  }
  return lists;
}

}  // namespace

HashEstimator::HashEstimator(int64_t min_values, int64_t pair_budget,
                             uint64_t seed)
    : min_values_(min_values), pair_budget_(pair_budget), seed_(seed) {
  MNC_CHECK_GE(min_values, 16);
  MNC_CHECK_GT(pair_budget, 0);
}

SynopsisPtr HashEstimator::Build(const Matrix& a) {
  return std::make_shared<MatrixHandleSynopsis>(a);
}

double HashEstimator::EstimateProduct(const Matrix& a, const Matrix& b) {
  MNC_CHECK_EQ(a.cols(), b.rows());
  const CsrMatrix ca = a.AsCsr();
  const CsrMatrix cb = b.AsCsr();
  const double ml =
      static_cast<double>(ca.rows()) * static_cast<double>(cb.cols());
  if (ml == 0.0) return 0.0;

  // Adaptive sampling threshold: keep the expected number of enumerated
  // pairs within the budget. sum_k |A_k| |B_k| is the total pair count.
  const std::vector<int64_t> col_counts_a = ca.NnzPerCol();
  double total_pairs = 0.0;
  for (int64_t k = 0; k < ca.cols(); ++k) {
    total_pairs += static_cast<double>(col_counts_a[static_cast<size_t>(k)]) *
                   static_cast<double>(cb.RowNnz(k));
  }
  if (total_pairs == 0.0) return 0.0;
  const double p = std::min(
      1.0, std::sqrt(static_cast<double>(pair_budget_) / total_pairs));

  const uint64_t row_seed = seed_ * 0x9E3779B97F4A7C15ULL + 1;
  const uint64_t col_seed = seed_ * 0xC2B2AE3D27D4EB4FULL + 2;
  const std::vector<std::vector<int64_t>> rows_per_col =
      SampledColumnLists(ca, p, row_seed);

  // Precompute sampled column hashes of B rows.
  // KMV buffer: the min_values_ smallest distinct pair hashes.
  std::set<uint64_t> kmv;
  auto offer = [&](uint64_t h) {
    if (static_cast<int64_t>(kmv.size()) < min_values_) {
      kmv.insert(h);
    } else if (h < *kmv.rbegin()) {
      if (kmv.insert(h).second) {
        kmv.erase(std::prev(kmv.end()));
      }
    }
  };

  std::vector<uint64_t> col_hash(static_cast<size_t>(cb.cols()));
  std::vector<char> col_sampled(static_cast<size_t>(cb.cols()));
  for (int64_t j = 0; j < cb.cols(); ++j) {
    const uint64_t h = Mix64(static_cast<uint64_t>(j) ^ col_seed);
    col_hash[static_cast<size_t>(j)] = h;
    col_sampled[static_cast<size_t>(j)] = ToUnit(h) < p ? 1 : 0;
  }

  for (int64_t k = 0; k < ca.cols(); ++k) {
    const auto& rows = rows_per_col[static_cast<size_t>(k)];
    if (rows.empty()) continue;
    for (int64_t j : cb.RowIndices(k)) {
      if (!col_sampled[static_cast<size_t>(j)]) continue;
      const uint64_t hj = col_hash[static_cast<size_t>(j)];
      for (int64_t i : rows) {
        // Pair hash: mix of the two index hashes — identical pairs from
        // different k collapse to the same value (KMV deduplicates).
        offer(Mix64(Mix64(static_cast<uint64_t>(i) ^ row_seed) ^ hj));
      }
    }
  }

  double sampled_distinct;
  if (static_cast<int64_t>(kmv.size()) < min_values_) {
    sampled_distinct = static_cast<double>(kmv.size());
  } else {
    const double vk = ToUnit(*kmv.rbegin());
    sampled_distinct =
        vk > 0.0 ? static_cast<double>(min_values_ - 1) / vk : 0.0;
  }
  const double distinct = sampled_distinct / (p * p);
  return std::clamp(distinct / ml, 0.0, 1.0);
}

double HashEstimator::EstimateSparsity(OpKind op, const SynopsisPtr& a,
                                       const SynopsisPtr& b, int64_t,
                                       int64_t) {
  MNC_CHECK(op == OpKind::kMatMul);
  return EstimateProduct(As<MatrixHandleSynopsis>(a).matrix(),
                         As<MatrixHandleSynopsis>(b).matrix());
}

SynopsisPtr HashEstimator::Propagate(OpKind, const SynopsisPtr&,
                                     const SynopsisPtr&, int64_t, int64_t) {
  MNC_CHECK_MSG(false, "hash estimator applies to single products only");
  return nullptr;
}

}  // namespace mnc
