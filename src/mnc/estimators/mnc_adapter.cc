#include "mnc/estimators/mnc_adapter.h"

#include "mnc/core/mnc_estimator.h"
#include "mnc/core/mnc_propagation.h"

namespace mnc {

MncEstimator::MncEstimator(bool basic, uint64_t seed, RoundingMode rounding)
    : basic_(basic), rng_(seed), rounding_(rounding) {}

SynopsisPtr MncEstimator::Build(const Matrix& a) {
  MncSketch sketch = MncSketch::FromMatrix(a);
  if (basic_) sketch = sketch.ToBasic();
  return std::make_shared<MncSynopsis>(std::move(sketch));
}

double MncEstimator::EstimateSparsity(OpKind op, const SynopsisPtr& a,
                                      const SynopsisPtr& b, int64_t out_rows,
                                      int64_t out_cols) {
  const MncSketch& sa = As<MncSynopsis>(a).sketch();
  switch (op) {
    case OpKind::kMatMul: {
      const MncSketch& sb = As<MncSynopsis>(b).sketch();
      return basic_ ? EstimateProductSparsityBasic(sa, sb)
                    : EstimateProductSparsity(sa, sb);
    }
    case OpKind::kEWiseAdd:
    case OpKind::kEWiseMax:
      return EstimateEWiseAddSparsity(sa, As<MncSynopsis>(b).sketch());
    case OpKind::kEWiseMult:
    case OpKind::kEWiseMin:
      return EstimateEWiseMultSparsity(sa, As<MncSynopsis>(b).sketch());
    default: {
      // Reorganizations: derive the sketch (cheap, O(d)) and read off its
      // sparsity — exact wherever §4.1 allows exact inference.
      const MncSketch out = Derive(op, a, b, out_rows, out_cols);
      return out.Sparsity();
    }
  }
}

MncSketch MncEstimator::Derive(OpKind op, const SynopsisPtr& a,
                               const SynopsisPtr& b, int64_t out_rows,
                               int64_t out_cols) {
  const MncSketch& sa = As<MncSynopsis>(a).sketch();
  switch (op) {
    case OpKind::kMatMul:
      return PropagateProduct(sa, As<MncSynopsis>(b).sketch(), rng_, basic_,
                              rounding_);
    case OpKind::kEWiseAdd:
    case OpKind::kEWiseMax:
      return PropagateEWiseAdd(sa, As<MncSynopsis>(b).sketch(), rng_,
                               rounding_);
    case OpKind::kEWiseMult:
    case OpKind::kEWiseMin:
      return PropagateEWiseMult(sa, As<MncSynopsis>(b).sketch(), rng_,
                                rounding_);
    case OpKind::kScale:
      return PropagateScale(sa);
    case OpKind::kRowSums:
      return PropagateRowSums(sa);
    case OpKind::kColSums:
      return PropagateColSums(sa);
    case OpKind::kTranspose:
      return PropagateTranspose(sa);
    case OpKind::kReshape:
      return PropagateReshape(sa, out_rows, out_cols, rng_, rounding_);
    case OpKind::kDiag:
      return PropagateDiag(sa, rng_, rounding_);
    case OpKind::kRBind:
      return PropagateRBind(sa, As<MncSynopsis>(b).sketch());
    case OpKind::kCBind:
      return PropagateCBind(sa, As<MncSynopsis>(b).sketch());
    case OpKind::kNotEqualZero:
      return PropagateNotEqualZero(sa);
    case OpKind::kEqualZero:
      return PropagateEqualZero(sa);
  }
  MNC_CHECK_MSG(false, "unreachable");
  return sa;
}

SynopsisPtr MncEstimator::Propagate(OpKind op, const SynopsisPtr& a,
                                    const SynopsisPtr& b, int64_t out_rows,
                                    int64_t out_cols) {
  MncSketch out = Derive(op, a, b, out_rows, out_cols);
  if (basic_) out = out.ToBasic();
  return std::make_shared<MncSynopsis>(std::move(out));
}

}  // namespace mnc
