// Sampling-based estimators (§2.3, Eq. 5, and Appendix A, Eq. 16).
//
// These draw a uniform sample S of columns of A (and aligned rows of B) at
// estimation time — no synopsis is materialized, so construction is free
// (Fig. 7(b)). Two variants:
//   - Biased (E_smpl of MatFast [65], Eq. 5): the sparsity of the largest
//     sampled outer product; a strict lower bound that does not converge.
//     Applies to single operations only.
//   - Unbiased (Appendix A, Eq. 16): treats unsampled outer products as
//     drawn from the empirical distribution of the sampled ones. Supports
//     chains of matrix products via the Appendix-A rule: for an
//     intermediate M(j) with sparsity estimate s_j, per-column counts are
//     taken as nnz(M(j):k) = m_j * s_j (uniformity).
// Both provide a column-sampled exact-intersection estimate for
// element-wise multiplication (the B2.5-style use cases).

#ifndef MNC_ESTIMATORS_SAMPLING_ESTIMATOR_H_
#define MNC_ESTIMATORS_SAMPLING_ESTIMATOR_H_

#include <optional>

#include "mnc/estimators/sparsity_estimator.h"
#include "mnc/util/random.h"

namespace mnc {

// Synopsis: a shared handle to the matrix itself (samples are drawn
// lazily). Also used by the hash estimator.
class MatrixHandleSynopsis final : public EstimatorSynopsis {
 public:
  explicit MatrixHandleSynopsis(Matrix m)
      : EstimatorSynopsis(m.rows(), m.cols()), matrix_(std::move(m)) {}

  const Matrix& matrix() const { return matrix_; }
  // The sample is not materialized; the synopsis itself is just a handle.
  int64_t SizeBytes() const override {
    return static_cast<int64_t>(sizeof(MatrixHandleSynopsis));
  }

 private:
  Matrix matrix_;
};

// Sampling synopsis: a matrix handle for base inputs, or just the shape and
// the propagated sparsity estimate for chain intermediates (Appendix A).
class SamplingSynopsis final : public EstimatorSynopsis {
 public:
  explicit SamplingSynopsis(Matrix m)
      : EstimatorSynopsis(m.rows(), m.cols()),
        sparsity_(m.Sparsity()),
        matrix_(std::move(m)) {}

  SamplingSynopsis(int64_t rows, int64_t cols, double sparsity)
      : EstimatorSynopsis(rows, cols), sparsity_(sparsity) {}

  bool has_matrix() const { return matrix_.has_value(); }
  const Matrix& matrix() const {
    MNC_CHECK(matrix_.has_value());
    return *matrix_;
  }
  double sparsity() const { return sparsity_; }

  int64_t SizeBytes() const override {
    return static_cast<int64_t>(sizeof(SamplingSynopsis));
  }

 private:
  double sparsity_;
  std::optional<Matrix> matrix_;
};

class SamplingEstimator final : public SparsityEstimator {
 public:
  static constexpr double kDefaultSampleFraction = 0.05;

  // `unbiased` switches between Eq. 5 (false) and Eq. 16 (true).
  SamplingEstimator(bool unbiased,
                    double sample_fraction = kDefaultSampleFraction,
                    uint64_t seed = 42);

  std::string Name() const override {
    return unbiased_ ? "Sample(unbiased)" : "Sample";
  }
  bool SupportsOp(OpKind op) const override;
  // Only the unbiased variant propagates (product chains, Appendix A).
  bool SupportsChains() const override { return unbiased_; }
  SynopsisPtr Build(const Matrix& a) override;
  double EstimateSparsity(OpKind op, const SynopsisPtr& a,
                          const SynopsisPtr& b, int64_t out_rows,
                          int64_t out_cols) override;
  SynopsisPtr Propagate(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                        int64_t out_rows, int64_t out_cols) override;

 private:
  double EstimateProduct(const SamplingSynopsis& a,
                         const SamplingSynopsis& b);
  double EstimateEWiseMult(const SamplingSynopsis& a,
                           const SamplingSynopsis& b);

  bool unbiased_;
  double sample_fraction_;
  Rng rng_;
};

}  // namespace mnc

#endif  // MNC_ESTIMATORS_SAMPLING_ESTIMATOR_H_
