#include "mnc/estimators/adaptive_density_map.h"

#include <algorithm>
#include <numeric>

namespace mnc {

namespace {

// Work item for iterative quad-tree construction over a (row, col) triple
// range [lo, hi).
struct BuildItem {
  int32_t node;
  int64_t lo, hi;
  int64_t r0, c0, h, w;
  int depth;
};

}  // namespace

AdaptiveDensityMap AdaptiveDensityMap::FromCsr(const CsrMatrix& a,
                                               Options options) {
  MNC_CHECK_GT(options.min_cells, 0);
  AdaptiveDensityMap map;
  map.rows_ = a.rows();
  map.cols_ = a.cols();

  // Expand the non-zero coordinates; the build partitions them in place.
  const int64_t nnz = a.NumNonZeros();
  std::vector<int64_t> rows(static_cast<size_t>(nnz));
  std::vector<int64_t> cols(static_cast<size_t>(nnz));
  {
    size_t k = 0;
    for (int64_t i = 0; i < a.rows(); ++i) {
      for (int64_t j : a.RowIndices(i)) {
        rows[k] = i;
        cols[k] = j;
        ++k;
      }
    }
  }

  map.nodes_.push_back(Node{});
  std::vector<BuildItem> stack = {
      {0, 0, nnz, 0, 0, a.rows(), a.cols(), 0}};
  while (!stack.empty()) {
    const BuildItem item = stack.back();
    stack.pop_back();
    const int64_t count = item.hi - item.lo;
    const double cells =
        static_cast<double>(item.h) * static_cast<double>(item.w);
    const double sparsity =
        cells > 0.0 ? static_cast<double>(count) / cells : 0.0;
    map.nodes_[static_cast<size_t>(item.node)].sparsity =
        static_cast<float>(sparsity);

    // Leaf conditions: empty, fully dense, small enough, or too deep —
    // exactly the regions where finer blocks carry no extra information.
    if (count == 0 || sparsity >= 1.0 ||
        cells <= static_cast<double>(options.min_cells) ||
        item.depth >= options.max_depth || item.h <= 1 || item.w <= 1) {
      continue;
    }

    // Split into quadrants: partition by row, then by column within each
    // half (in-place, quicksort-style).
    const int64_t rmid = item.r0 + item.h / 2;
    const int64_t cmid = item.c0 + item.w / 2;
    // Partition rows < rmid to the front, keeping (row, col) pairs aligned.
    int64_t row_split = item.lo;
    for (int64_t k = item.lo; k < item.hi; ++k) {
      if (rows[static_cast<size_t>(k)] < rmid) {
        std::swap(rows[static_cast<size_t>(k)],
                  rows[static_cast<size_t>(row_split)]);
        std::swap(cols[static_cast<size_t>(k)],
                  cols[static_cast<size_t>(row_split)]);
        ++row_split;
      }
    }
    auto split_cols = [&](int64_t lo, int64_t hi) {
      int64_t mid = lo;
      for (int64_t k = lo; k < hi; ++k) {
        if (cols[static_cast<size_t>(k)] < cmid) {
          std::swap(rows[static_cast<size_t>(k)],
                    rows[static_cast<size_t>(mid)]);
          std::swap(cols[static_cast<size_t>(k)],
                    cols[static_cast<size_t>(mid)]);
          ++mid;
        }
      }
      return mid;
    };
    const int64_t top_split = split_cols(item.lo, row_split);
    const int64_t bottom_split = split_cols(row_split, item.hi);

    const int32_t first_child =
        static_cast<int32_t>(map.nodes_.size());
    map.nodes_[static_cast<size_t>(item.node)].first_child = first_child;
    map.nodes_.resize(map.nodes_.size() + 4);

    const int64_t h_top = item.h / 2;
    const int64_t w_left = item.w / 2;
    // Children order: NW, NE, SW, SE.
    stack.push_back({first_child, item.lo, top_split, item.r0, item.c0,
                     h_top, w_left, item.depth + 1});
    stack.push_back({first_child + 1, top_split, row_split, item.r0,
                     item.c0 + w_left, h_top, item.w - w_left,
                     item.depth + 1});
    stack.push_back({first_child + 2, row_split, bottom_split,
                     item.r0 + h_top, item.c0, item.h - h_top, w_left,
                     item.depth + 1});
    stack.push_back({first_child + 3, bottom_split, item.hi,
                     item.r0 + h_top, item.c0 + w_left, item.h - h_top,
                     item.w - w_left, item.depth + 1});
  }
  return map;
}

double AdaptiveDensityMap::QueryNode(int32_t index, const Region& node_region,
                                     int64_t r0, int64_t c0, int64_t h,
                                     int64_t w) const {
  // Intersection of the query with this node.
  const int64_t ri = std::max(node_region.r0, r0);
  const int64_t ci = std::max(node_region.c0, c0);
  const int64_t re = std::min(node_region.r0 + node_region.h, r0 + h);
  const int64_t ce = std::min(node_region.c0 + node_region.w, c0 + w);
  if (ri >= re || ci >= ce) return 0.0;
  const double area =
      static_cast<double>(re - ri) * static_cast<double>(ce - ci);

  const Node& node = nodes_[static_cast<size_t>(index)];
  if (node.first_child < 0 || node.sparsity == 0.0f ||
      node.sparsity == 1.0f) {
    // Leaf (or uniform subtree): contribute area-weighted sparsity.
    return area * static_cast<double>(node.sparsity);
  }
  const int64_t h_top = node_region.h / 2;
  const int64_t w_left = node_region.w / 2;
  const Region nw{node_region.r0, node_region.c0, h_top, w_left};
  const Region ne{node_region.r0, node_region.c0 + w_left, h_top,
                  node_region.w - w_left};
  const Region sw{node_region.r0 + h_top, node_region.c0,
                  node_region.h - h_top, w_left};
  const Region se{node_region.r0 + h_top, node_region.c0 + w_left,
                  node_region.h - h_top, node_region.w - w_left};
  return QueryNode(node.first_child, nw, r0, c0, h, w) +
         QueryNode(node.first_child + 1, ne, r0, c0, h, w) +
         QueryNode(node.first_child + 2, sw, r0, c0, h, w) +
         QueryNode(node.first_child + 3, se, r0, c0, h, w);
}

double AdaptiveDensityMap::QueryRegion(int64_t r0, int64_t c0, int64_t h,
                                       int64_t w) const {
  MNC_CHECK(r0 >= 0 && c0 >= 0 && h >= 0 && w >= 0);
  if (h == 0 || w == 0 || nodes_.empty()) return 0.0;
  const double mass = QueryNode(0, {0, 0, rows_, cols_}, r0, c0, h, w);
  return mass / (static_cast<double>(h) * static_cast<double>(w));
}

double AdaptiveDensityMap::OverallSparsity() const {
  return nodes_.empty() ? 0.0
                        : static_cast<double>(nodes_.front().sparsity);
}

DensityMap AdaptiveDensityMap::Rasterize(int64_t block_size) const {
  DensityMap out(rows_, cols_, block_size);
  for (int64_t bi = 0; bi < out.block_rows(); ++bi) {
    const int64_t r0 = bi * block_size;
    const int64_t h = out.BlockRowExtent(bi);
    for (int64_t bj = 0; bj < out.block_cols(); ++bj) {
      const int64_t c0 = bj * block_size;
      const int64_t w = out.BlockColExtent(bj);
      out.SetBlockSparsity(bi, bj, QueryRegion(r0, c0, h, w));
    }
  }
  return out;
}

SynopsisPtr AdaptiveDensityMapEstimator::Build(const Matrix& a) {
  return std::make_shared<AdaptiveDensityMapSynopsis>(
      AdaptiveDensityMap::FromCsr(a.AsCsr(), options_));
}

SynopsisPtr AdaptiveDensityMapEstimator::Normalize(
    const SynopsisPtr& s) const {
  if (s == nullptr) return s;
  if (const auto* adaptive =
          dynamic_cast<const AdaptiveDensityMapSynopsis*>(s.get())) {
    return std::make_shared<DensityMapSynopsis>(
        adaptive->map().Rasterize(delegate_.block_size()));
  }
  return s;  // already a fixed map (chain intermediate)
}

double AdaptiveDensityMapEstimator::EstimateSparsity(OpKind op,
                                                     const SynopsisPtr& a,
                                                     const SynopsisPtr& b,
                                                     int64_t out_rows,
                                                     int64_t out_cols) {
  return delegate_.EstimateSparsity(op, Normalize(a), Normalize(b), out_rows,
                                    out_cols);
}

SynopsisPtr AdaptiveDensityMapEstimator::Propagate(OpKind op,
                                                   const SynopsisPtr& a,
                                                   const SynopsisPtr& b,
                                                   int64_t out_rows,
                                                   int64_t out_cols) {
  return delegate_.Propagate(op, Normalize(a), Normalize(b), out_rows,
                             out_cols);
}

}  // namespace mnc
