// Adaptive (quad-tree) density map — the "Dynamic Block Sizes" extension
// sketched in §2.2 of the paper.
//
// The fixed-block density map can be *larger than an ultra-sparse input*
// (a 1M x 1M matrix needs a 122 MB map at b = 256 regardless of nnz). The
// natural fix the paper describes is a recursive quad-tree that adapts
// local block sizes to the non-zero structure: empty and fully dense
// regions collapse to single leaves, so storage tracks the occupied area.
//
// The paper also notes why it stopped there: "the non-aligned blocks in
// dmA and dmB would complicate the estimator". This implementation resolves
// that the pragmatic way — storage is adaptive, estimation rasterizes both
// synopses to a common fixed grid and reuses the standard density-map
// pseudo matrix multiplication. Accuracy therefore matches the fixed map at
// the chosen resolution while construction/storage benefit from adaptivity.

#ifndef MNC_ESTIMATORS_ADAPTIVE_DENSITY_MAP_H_
#define MNC_ESTIMATORS_ADAPTIVE_DENSITY_MAP_H_

#include <vector>

#include "mnc/estimators/density_map_estimator.h"
#include "mnc/estimators/sparsity_estimator.h"

namespace mnc {

class AdaptiveDensityMap {
 public:
  struct Options {
    // Stop splitting below this many cells per node.
    int64_t min_cells = 256 * 256;
    // Hard recursion cap.
    int max_depth = 16;
  };

  static AdaptiveDensityMap FromCsr(const CsrMatrix& a, Options options);
  static AdaptiveDensityMap FromCsr(const CsrMatrix& a) {
    return FromCsr(a, Options{});
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t NumNodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t SizeBytes() const {
    return static_cast<int64_t>(nodes_.size() * sizeof(Node));
  }

  // Average sparsity of the axis-aligned region [r0, r0+h) x [c0, c0+w),
  // area-weighted over the covering leaves.
  double QueryRegion(int64_t r0, int64_t c0, int64_t h, int64_t w) const;

  double OverallSparsity() const;

  // Rasterizes to a fixed-block density map (for estimation).
  DensityMap Rasterize(int64_t block_size) const;

 private:
  struct Node {
    // Index of the first of four children in nodes_, or -1 for leaves.
    int32_t first_child = -1;
    float sparsity = 0.0f;  // leaf payload (subtree average for inners)
  };

  struct Region {
    int64_t r0, c0, h, w;
  };

  double QueryNode(int32_t index, const Region& node_region, int64_t r0,
                   int64_t c0, int64_t h, int64_t w) const;

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<Node> nodes_;
};

class AdaptiveDensityMapSynopsis final : public EstimatorSynopsis {
 public:
  explicit AdaptiveDensityMapSynopsis(AdaptiveDensityMap map)
      : EstimatorSynopsis(map.rows(), map.cols()), map_(std::move(map)) {}

  const AdaptiveDensityMap& map() const { return map_; }
  int64_t SizeBytes() const override { return map_.SizeBytes(); }

 private:
  AdaptiveDensityMap map_;
};

// Estimator: adaptive storage, fixed-grid estimation (delegating to the
// standard DensityMapEstimator after rasterization). Supports the same
// operations and chains.
class AdaptiveDensityMapEstimator final : public SparsityEstimator {
 public:
  explicit AdaptiveDensityMapEstimator(
      int64_t block_size = DensityMapEstimator::kDefaultBlockSize,
      AdaptiveDensityMap::Options options = AdaptiveDensityMap::Options{})
      : delegate_(block_size), options_(options) {}

  std::string Name() const override { return "DMap(adaptive)"; }
  bool SupportsOp(OpKind op) const override {
    return delegate_.SupportsOp(op);
  }
  bool SupportsChains() const override { return true; }
  SynopsisPtr Build(const Matrix& a) override;
  double EstimateSparsity(OpKind op, const SynopsisPtr& a,
                          const SynopsisPtr& b, int64_t out_rows,
                          int64_t out_cols) override;
  SynopsisPtr Propagate(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                        int64_t out_rows, int64_t out_cols) override;

 private:
  // Converts an adaptive synopsis to the delegate's fixed representation;
  // passes fixed synopses (chain intermediates) through unchanged.
  SynopsisPtr Normalize(const SynopsisPtr& s) const;

  DensityMapEstimator delegate_;
  AdaptiveDensityMap::Options options_;
};

}  // namespace mnc

#endif  // MNC_ESTIMATORS_ADAPTIVE_DENSITY_MAP_H_
