#include "mnc/estimators/density_map_estimator.h"

#include <algorithm>
#include <cmath>

namespace mnc {

namespace {

// Average-case block product estimate: the per-cell non-zero probability of
// a (ra x common) * (common x cb) block product with block sparsities s_a
// and s_b is 1 - (1 - s_a s_b)^common (Eq. 1 applied per block).
double BlockProductSparsity(double s_a, double s_b, int64_t common) {
  const double cell = std::min(1.0, s_a * s_b);
  if (cell >= 1.0) return 1.0;
  return 1.0 - std::exp(static_cast<double>(common) * std::log1p(-cell));
}

}  // namespace

DensityMap::DensityMap(int64_t rows, int64_t cols, int64_t block_size)
    : rows_(rows),
      cols_(cols),
      block_size_(block_size),
      block_rows_(std::max<int64_t>(1, (rows + block_size - 1) / block_size)),
      block_cols_(std::max<int64_t>(1, (cols + block_size - 1) / block_size)) {
  MNC_CHECK_GT(block_size, 0);
  grid_.assign(static_cast<size_t>(block_rows_ * block_cols_), 0.0);
}

DensityMap DensityMap::FromMatrix(const Matrix& m, int64_t block_size) {
  DensityMap map(m.rows(), m.cols(), block_size);
  // Count per block, then normalize.
  std::vector<int64_t> counts(map.grid_.size(), 0);
  if (m.is_dense()) {
    const DenseMatrix& d = m.dense();
    for (int64_t i = 0; i < d.rows(); ++i) {
      const double* r = d.row(i);
      const int64_t bi = i / block_size;
      for (int64_t j = 0; j < d.cols(); ++j) {
        if (r[j] != 0.0) {
          ++counts[static_cast<size_t>(bi * map.block_cols_ +
                                       j / block_size)];
        }
      }
    }
  } else {
    const CsrMatrix& s = m.csr();
    for (int64_t i = 0; i < s.rows(); ++i) {
      const int64_t bi = i / block_size;
      for (int64_t j : s.RowIndices(i)) {
        ++counts[static_cast<size_t>(bi * map.block_cols_ + j / block_size)];
      }
    }
  }
  for (int64_t bi = 0; bi < map.block_rows_; ++bi) {
    const double re = static_cast<double>(map.BlockRowExtent(bi));
    for (int64_t bj = 0; bj < map.block_cols_; ++bj) {
      const double cells = re * static_cast<double>(map.BlockColExtent(bj));
      const double count = static_cast<double>(
          counts[static_cast<size_t>(bi * map.block_cols_ + bj)]);
      map.SetBlockSparsity(bi, bj, cells > 0.0 ? count / cells : 0.0);
    }
  }
  return map;
}

int64_t DensityMap::BlockRowExtent(int64_t bi) const {
  return std::min(block_size_, rows_ - bi * block_size_);
}

int64_t DensityMap::BlockColExtent(int64_t bj) const {
  return std::min(block_size_, cols_ - bj * block_size_);
}

double DensityMap::TotalNnz() const {
  double nnz = 0.0;
  for (int64_t bi = 0; bi < block_rows_; ++bi) {
    const double re = static_cast<double>(BlockRowExtent(bi));
    for (int64_t bj = 0; bj < block_cols_; ++bj) {
      nnz += BlockSparsity(bi, bj) * re *
             static_cast<double>(BlockColExtent(bj));
    }
  }
  return nnz;
}

double DensityMap::OverallSparsity() const {
  const double cells =
      static_cast<double>(rows_) * static_cast<double>(cols_);
  if (cells == 0.0) return 0.0;
  return TotalNnz() / cells;
}

DensityMap DensityMap::Uniform(int64_t rows, int64_t cols, int64_t block_size,
                               double sparsity) {
  DensityMap map(rows, cols, block_size);
  for (auto& s : map.grid_) s = sparsity;
  return map;
}

bool DensityMapEstimator::SupportsOp(OpKind) const { return true; }

SynopsisPtr DensityMapEstimator::Build(const Matrix& a) {
  return std::make_shared<DensityMapSynopsis>(
      DensityMap::FromMatrix(a, block_size_));
}

DensityMap DensityMapEstimator::Apply(OpKind op, const SynopsisPtr& a,
                                      const SynopsisPtr& b, int64_t out_rows,
                                      int64_t out_cols) {
  const DensityMap& da = As<DensityMapSynopsis>(a).map();
  switch (op) {
    case OpKind::kMatMul: {
      // Eq. 4: pseudo matrix multiplication over density maps.
      const DensityMap& db = As<DensityMapSynopsis>(b).map();
      MNC_CHECK_EQ(da.cols(), db.rows());
      DensityMap out(da.rows(), db.cols(), block_size_);
      for (int64_t bi = 0; bi < out.block_rows(); ++bi) {
        for (int64_t bj = 0; bj < out.block_cols(); ++bj) {
          double s = 0.0;
          for (int64_t bk = 0; bk < da.block_cols(); ++bk) {
            const double s_blk = BlockProductSparsity(
                da.BlockSparsity(bi, bk), db.BlockSparsity(bk, bj),
                da.BlockColExtent(bk));
            s = s + s_blk - s * s_blk;  // probabilistic ⊕
          }
          out.SetBlockSparsity(bi, bj, s);
        }
      }
      return out;
    }
    case OpKind::kEWiseAdd:
    case OpKind::kEWiseMult:
    case OpKind::kEWiseMin:
    case OpKind::kEWiseMax: {
      const DensityMap& db = As<DensityMapSynopsis>(b).map();
      MNC_CHECK_EQ(da.rows(), db.rows());
      MNC_CHECK_EQ(da.cols(), db.cols());
      const bool union_like =
          op == OpKind::kEWiseAdd || op == OpKind::kEWiseMax;
      DensityMap out(da.rows(), da.cols(), block_size_);
      for (int64_t bi = 0; bi < out.block_rows(); ++bi) {
        for (int64_t bj = 0; bj < out.block_cols(); ++bj) {
          const double sa = da.BlockSparsity(bi, bj);
          const double sb = db.BlockSparsity(bi, bj);
          out.SetBlockSparsity(bi, bj,
                               union_like ? sa + sb - sa * sb : sa * sb);
        }
      }
      return out;
    }
    case OpKind::kScale:
      return da;  // alpha != 0 preserves the pattern
    case OpKind::kRowSums: {
      // P(row non-empty) per block row: 1 - prod over block columns of
      // (1 - s)^extent.
      DensityMap out(da.rows(), 1, block_size_);
      for (int64_t bi = 0; bi < da.block_rows(); ++bi) {
        double zero_prob = 1.0;
        for (int64_t bj = 0; bj < da.block_cols(); ++bj) {
          zero_prob *= std::pow(1.0 - da.BlockSparsity(bi, bj),
                                static_cast<double>(da.BlockColExtent(bj)));
        }
        out.SetBlockSparsity(bi, 0, 1.0 - zero_prob);
      }
      return out;
    }
    case OpKind::kColSums: {
      DensityMap out(1, da.cols(), block_size_);
      for (int64_t bj = 0; bj < da.block_cols(); ++bj) {
        double zero_prob = 1.0;
        for (int64_t bi = 0; bi < da.block_rows(); ++bi) {
          zero_prob *= std::pow(1.0 - da.BlockSparsity(bi, bj),
                                static_cast<double>(da.BlockRowExtent(bi)));
        }
        out.SetBlockSparsity(0, bj, 1.0 - zero_prob);
      }
      return out;
    }
    case OpKind::kTranspose: {
      DensityMap out(da.cols(), da.rows(), block_size_);
      for (int64_t bi = 0; bi < da.block_rows(); ++bi) {
        for (int64_t bj = 0; bj < da.block_cols(); ++bj) {
          out.SetBlockSparsity(bj, bi, da.BlockSparsity(bi, bj));
        }
      }
      return out;
    }
    case OpKind::kNotEqualZero:
      return da;
    case OpKind::kEqualZero: {
      DensityMap out(da.rows(), da.cols(), block_size_);
      for (int64_t bi = 0; bi < da.block_rows(); ++bi) {
        for (int64_t bj = 0; bj < da.block_cols(); ++bj) {
          out.SetBlockSparsity(bi, bj, 1.0 - da.BlockSparsity(bi, bj));
        }
      }
      return out;
    }
    case OpKind::kDiag: {
      if (da.cols() == 1) {
        // Vector -> diagonal matrix: diagonal blocks only, with the vector
        // block's non-zeros spread over block_size^2 cells.
        DensityMap out(da.rows(), da.rows(), block_size_);
        for (int64_t bi = 0; bi < da.block_rows(); ++bi) {
          const double extent = static_cast<double>(da.BlockRowExtent(bi));
          out.SetBlockSparsity(
              bi, bi, da.BlockSparsity(bi, 0) * extent /
                          (extent * extent));
        }
        return out;
      }
      // Matrix -> diagonal vector: block i of the vector sees the diagonal
      // of block (i, i).
      DensityMap out(da.rows(), 1, block_size_);
      for (int64_t bi = 0; bi < out.block_rows(); ++bi) {
        out.SetBlockSparsity(bi, 0,
                             bi < da.block_cols()
                                 ? da.BlockSparsity(bi, bi)
                                 : 0.0);
      }
      return out;
    }
    case OpKind::kRBind: {
      const DensityMap& db = As<DensityMapSynopsis>(b).map();
      if (da.rows() % block_size_ == 0) {
        // Aligned: stack the grids.
        DensityMap out(da.rows() + db.rows(), da.cols(), block_size_);
        for (int64_t bi = 0; bi < da.block_rows(); ++bi) {
          for (int64_t bj = 0; bj < da.block_cols(); ++bj) {
            out.SetBlockSparsity(bi, bj, da.BlockSparsity(bi, bj));
          }
        }
        for (int64_t bi = 0; bi < db.block_rows(); ++bi) {
          for (int64_t bj = 0; bj < db.block_cols(); ++bj) {
            out.SetBlockSparsity(da.block_rows() + bi, bj,
                                 db.BlockSparsity(bi, bj));
          }
        }
        return out;
      }
      // Non-aligned blocks cannot be stitched (§2.2 "Dynamic Block Sizes");
      // fall back to a uniform map preserving the total count.
      const double nnz = da.TotalNnz() + db.TotalNnz();
      const double cells = static_cast<double>(da.rows() + db.rows()) *
                           static_cast<double>(da.cols());
      return DensityMap::Uniform(da.rows() + db.rows(), da.cols(),
                                 block_size_, cells > 0 ? nnz / cells : 0.0);
    }
    case OpKind::kCBind: {
      const DensityMap& db = As<DensityMapSynopsis>(b).map();
      if (da.cols() % block_size_ == 0) {
        DensityMap out(da.rows(), da.cols() + db.cols(), block_size_);
        for (int64_t bi = 0; bi < da.block_rows(); ++bi) {
          for (int64_t bj = 0; bj < da.block_cols(); ++bj) {
            out.SetBlockSparsity(bi, bj, da.BlockSparsity(bi, bj));
          }
          for (int64_t bj = 0; bj < db.block_cols(); ++bj) {
            out.SetBlockSparsity(bi, da.block_cols() + bj,
                                 db.BlockSparsity(bi, bj));
          }
        }
        return out;
      }
      const double nnz = da.TotalNnz() + db.TotalNnz();
      const double cells = static_cast<double>(da.rows()) *
                           static_cast<double>(da.cols() + db.cols());
      return DensityMap::Uniform(da.rows(), da.cols() + db.cols(),
                                 block_size_, cells > 0 ? nnz / cells : 0.0);
    }
    case OpKind::kReshape:
      // Blocks do not survive relinearization; keep the overall sparsity.
      return DensityMap::Uniform(out_rows, out_cols, block_size_,
                                 da.OverallSparsity());
  }
  MNC_CHECK_MSG(false, "unreachable");
  return DensityMap(0, 0, block_size_);
}

double DensityMapEstimator::EstimateSparsity(OpKind op, const SynopsisPtr& a,
                                             const SynopsisPtr& b,
                                             int64_t out_rows,
                                             int64_t out_cols) {
  return Apply(op, a, b, out_rows, out_cols).OverallSparsity();
}

SynopsisPtr DensityMapEstimator::Propagate(OpKind op, const SynopsisPtr& a,
                                           const SynopsisPtr& b,
                                           int64_t out_rows,
                                           int64_t out_cols) {
  return std::make_shared<DensityMapSynopsis>(
      Apply(op, a, b, out_rows, out_cols));
}

}  // namespace mnc
