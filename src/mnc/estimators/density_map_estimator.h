// Density-map estimator E_dm (§2.2, Eq. 4) [Kernert et al., EDBT'15].
//
// The synopsis partitions a matrix into b x b blocks (default b = 256) and
// stores the sparsity of each block. Matrix products are estimated with a
// pseudo matrix multiplication over density maps: multiply is replaced by
// the average-case estimator E_ac over blocks and plus by probabilistic
// propagation s_A⊕B = s_A + s_B - s_A s_B. Element-wise operations combine
// per block; reorganizations that do not align with the block grid fall back
// to a uniform map (the weakness §6.5/Fig. 15 demonstrates).

#ifndef MNC_ESTIMATORS_DENSITY_MAP_ESTIMATOR_H_
#define MNC_ESTIMATORS_DENSITY_MAP_ESTIMATOR_H_

#include <vector>

#include "mnc/estimators/sparsity_estimator.h"

namespace mnc {

// Grid of per-block sparsities for one matrix.
class DensityMap {
 public:
  DensityMap(int64_t rows, int64_t cols, int64_t block_size);

  static DensityMap FromMatrix(const Matrix& m, int64_t block_size);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t block_size() const { return block_size_; }
  int64_t block_rows() const { return block_rows_; }
  int64_t block_cols() const { return block_cols_; }

  double BlockSparsity(int64_t bi, int64_t bj) const {
    return grid_[static_cast<size_t>(bi * block_cols_ + bj)];
  }
  void SetBlockSparsity(int64_t bi, int64_t bj, double s) {
    grid_[static_cast<size_t>(bi * block_cols_ + bj)] = s;
  }

  // Cell extents of block row bi / block column bj (partial at the edges).
  int64_t BlockRowExtent(int64_t bi) const;
  int64_t BlockColExtent(int64_t bj) const;

  // Total estimated non-zeros (sum of block sparsity * block cells).
  double TotalNnz() const;
  double OverallSparsity() const;

  // Uniform map with the given overall sparsity (reorganization fallback).
  static DensityMap Uniform(int64_t rows, int64_t cols, int64_t block_size,
                            double sparsity);

  int64_t SizeBytes() const {
    return static_cast<int64_t>(grid_.size() * sizeof(double));
  }

 private:
  int64_t rows_;
  int64_t cols_;
  int64_t block_size_;
  int64_t block_rows_;
  int64_t block_cols_;
  std::vector<double> grid_;
};

class DensityMapSynopsis final : public EstimatorSynopsis {
 public:
  explicit DensityMapSynopsis(DensityMap map)
      : EstimatorSynopsis(map.rows(), map.cols()), map_(std::move(map)) {}

  const DensityMap& map() const { return map_; }
  int64_t SizeBytes() const override { return map_.SizeBytes(); }

 private:
  DensityMap map_;
};

class DensityMapEstimator final : public SparsityEstimator {
 public:
  static constexpr int64_t kDefaultBlockSize = 256;

  explicit DensityMapEstimator(int64_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {
    MNC_CHECK_GT(block_size, 0);
  }

  std::string Name() const override { return "DMap"; }
  int64_t block_size() const { return block_size_; }

  bool SupportsOp(OpKind op) const override;
  bool SupportsChains() const override { return true; }
  SynopsisPtr Build(const Matrix& a) override;
  double EstimateSparsity(OpKind op, const SynopsisPtr& a,
                          const SynopsisPtr& b, int64_t out_rows,
                          int64_t out_cols) override;
  SynopsisPtr Propagate(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                        int64_t out_rows, int64_t out_cols) override;

 private:
  DensityMap Apply(OpKind op, const SynopsisPtr& a, const SynopsisPtr& b,
                   int64_t out_rows, int64_t out_cols);

  int64_t block_size_;
};

}  // namespace mnc

#endif  // MNC_ESTIMATORS_DENSITY_MAP_ESTIMATOR_H_
