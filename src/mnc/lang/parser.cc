#include "mnc/lang/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace mnc {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kPlus,
  kStar,
  kMatMul,  // %*%
  kLParen,
  kRParen,
  kComma,
  kNeq,       // !=
  kEq,        // ==
  kAssign,    // =
  kSemicolon, // ;
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  double number = 0.0;
  size_t position = 0;
};

// Splits `source` into tokens; returns false with `error` set on bad input.
bool Tokenize(const std::string& source, std::vector<Token>& tokens,
              std::string& error) {
  size_t i = 0;
  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[j])) ||
              source[j] == '_')) {
        ++j;
      }
      tokens.push_back({TokenKind::kIdent, source.substr(i, j - i), 0.0, i});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      size_t j = i;
      while (j < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[j])) ||
              source[j] == '.' || source[j] == 'e' || source[j] == 'E' ||
              ((source[j] == '+' || source[j] == '-') && j > i &&
               (source[j - 1] == 'e' || source[j - 1] == 'E')))) {
        ++j;
      }
      const std::string text = source.substr(i, j - i);
      tokens.push_back(
          {TokenKind::kNumber, text, std::atof(text.c_str()), i});
      i = j;
      continue;
    }
    switch (c) {
      case '+':
        tokens.push_back({TokenKind::kPlus, "+", 0.0, i});
        ++i;
        continue;
      case '*':
        tokens.push_back({TokenKind::kStar, "*", 0.0, i});
        ++i;
        continue;
      case '(':
        tokens.push_back({TokenKind::kLParen, "(", 0.0, i});
        ++i;
        continue;
      case ')':
        tokens.push_back({TokenKind::kRParen, ")", 0.0, i});
        ++i;
        continue;
      case ',':
        tokens.push_back({TokenKind::kComma, ",", 0.0, i});
        ++i;
        continue;
      case ';':
        tokens.push_back({TokenKind::kSemicolon, ";", 0.0, i});
        ++i;
        continue;
      case '%':
        if (source.compare(i, 3, "%*%") == 0) {
          tokens.push_back({TokenKind::kMatMul, "%*%", 0.0, i});
          i += 3;
          continue;
        }
        error = "unexpected '%' at position " + std::to_string(i) +
                " (did you mean %*%?)";
        return false;
      case '!':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          tokens.push_back({TokenKind::kNeq, "!=", 0.0, i});
          i += 2;
          continue;
        }
        error = "unexpected '!' at position " + std::to_string(i);
        return false;
      case '=':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          tokens.push_back({TokenKind::kEq, "==", 0.0, i});
          i += 2;
          continue;
        }
        tokens.push_back({TokenKind::kAssign, "=", 0.0, i});
        ++i;
        continue;
      default:
        error = std::string("unexpected character '") + c +
                "' at position " + std::to_string(i);
        return false;
    }
  }
  tokens.push_back({TokenKind::kEnd, "", 0.0, source.size()});
  return true;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens,
         const std::map<std::string, Matrix>& bindings,
         const std::map<std::string, ExprPtr>* leaf_bindings = nullptr)
      : tokens_(std::move(tokens)),
        bindings_(bindings),
        leaf_bindings_(leaf_bindings) {}

  ParseResult Run() {
    ExprPtr expr = ParseCmp();
    if (expr != nullptr && Peek().kind != TokenKind::kEnd) {
      return Fail("unexpected trailing input starting with '" +
                  Peek().text + "'");
    }
    if (expr == nullptr) return {nullptr, error_};
    return {expr, ""};
  }

  ParseResult RunProgram() {
    ExprPtr last;
    for (;;) {
      // Optional "IDENT =" assignment prefix (two-token lookahead).
      std::string target;
      if (Peek().kind == TokenKind::kIdent &&
          tokens_[index_ + 1].kind == TokenKind::kAssign) {
        target = Advance().text;
        ++index_;  // consume '='
      }
      ExprPtr expr = ParseCmp();
      if (expr == nullptr) return {nullptr, error_};
      if (!target.empty()) {
        env_[target] = expr;  // shadows matrices and earlier assignments
      }
      last = expr;
      if (Match(TokenKind::kSemicolon)) {
        if (Peek().kind == TokenKind::kEnd) break;  // trailing ';'
        continue;
      }
      if (Peek().kind == TokenKind::kEnd) break;
      return Fail("expected ';' or end of script, got '" + Peek().text +
                  "'");
    }
    return {last, ""};
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  const Token& Advance() { return tokens_[index_++]; }
  bool Match(TokenKind kind) {
    if (Peek().kind == kind) {
      ++index_;
      return true;
    }
    return false;
  }

  ParseResult Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " (at position " +
               std::to_string(Peek().position) + ")";
    }
    return {nullptr, error_};
  }
  ExprPtr FailExpr(const std::string& message) {
    (void)Fail(message);
    return nullptr;
  }

  // Comparisons bind loosest (R semantics): A %*% B != 0 means
  // (A %*% B) != 0.
  ExprPtr ParseCmp() {
    ExprPtr expr = ParseAdd();
    while (expr != nullptr && (Peek().kind == TokenKind::kNeq ||
                               Peek().kind == TokenKind::kEq)) {
      const bool neq = Peek().kind == TokenKind::kNeq;
      ++index_;
      if (Peek().kind != TokenKind::kNumber || Peek().number != 0.0) {
        return FailExpr(
            "only comparisons against 0 are supported (A != 0, A == 0)");
      }
      ++index_;
      expr = neq ? ExprNode::NotEqualZero(expr) : ExprNode::EqualZero(expr);
    }
    return expr;
  }

  ExprPtr ParseAdd() {
    ExprPtr left = ParseEMul();
    while (left != nullptr && Match(TokenKind::kPlus)) {
      ExprPtr right = ParseEMul();
      if (right == nullptr) return nullptr;
      if (left->rows() != right->rows() || left->cols() != right->cols()) {
        return FailExpr("shape mismatch for '+': " + Shape(left) + " vs " +
                        Shape(right));
      }
      left = ExprNode::EWiseAdd(left, right);
    }
    return left;
  }

  ExprPtr ParseEMul() {
    ExprPtr left = ParseMatMul();
    while (left != nullptr && Match(TokenKind::kStar)) {
      ExprPtr right = ParseMatMul();
      if (right == nullptr) return nullptr;
      if (left->rows() != right->rows() || left->cols() != right->cols()) {
        return FailExpr("shape mismatch for '*': " + Shape(left) + " vs " +
                        Shape(right));
      }
      left = ExprNode::EWiseMult(left, right);
    }
    return left;
  }

  ExprPtr ParseMatMul() {
    ExprPtr left = ParsePrimary();
    while (left != nullptr && Match(TokenKind::kMatMul)) {
      ExprPtr right = ParsePrimary();
      if (right == nullptr) return nullptr;
      if (left->cols() != right->rows()) {
        return FailExpr("inner dimension mismatch for '%*%': " +
                        Shape(left) + " vs " + Shape(right));
      }
      left = ExprNode::MatMul(left, right);
    }
    return left;
  }

  ExprPtr ParsePrimary() {
    if (Peek().kind == TokenKind::kNumber) {
      // Scalar scaling: NUMBER '*' primary.
      const double alpha = Advance().number;
      if (!Match(TokenKind::kStar)) {
        return FailExpr("a number must be followed by '*' (scalar scaling)");
      }
      if (alpha == 0.0) {
        return FailExpr("scaling by 0 collapses the expression");
      }
      ExprPtr inner = ParsePrimary();
      if (inner == nullptr) return nullptr;
      return ExprNode::Scale(inner, alpha);
    }
    if (Match(TokenKind::kLParen)) {
      ExprPtr inner = ParseCmp();
      if (inner == nullptr) return nullptr;
      if (!Match(TokenKind::kRParen)) {
        return FailExpr("expected ')'");
      }
      return inner;
    }
    if (Peek().kind == TokenKind::kIdent) {
      const std::string name = Advance().text;
      if (Peek().kind == TokenKind::kLParen) {
        return ParseCall(name);
      }
      auto bound = env_.find(name);
      if (bound != env_.end()) return bound->second;
      // Pre-built leaves (e.g. a service catalog, including sketch-only
      // streaming registrations) resolve before raw matrix bindings.
      if (leaf_bindings_ != nullptr) {
        auto pre = leaf_bindings_->find(name);
        if (pre != leaf_bindings_->end()) {
          env_.emplace(name, pre->second);
          return pre->second;
        }
      }
      auto it = bindings_.find(name);
      if (it == bindings_.end()) {
        return FailExpr("unknown matrix '" + name + "'");
      }
      // Leaves are cached so repeated references share one DAG node (and
      // downstream synopsis/evaluation memoization applies).
      ExprPtr leaf = ExprNode::Leaf(it->second, name);
      env_.emplace(name, leaf);
      return leaf;
    }
    return FailExpr("expected a matrix name, number, or '('");
  }

  // FUNC '(' ... ')' with per-function arity and shape validation.
  ExprPtr ParseCall(const std::string& func) {
    if (!Match(TokenKind::kLParen)) {
      return FailExpr("expected '(' after '" + func + "'");
    }

    if (func == "reshape") {
      ExprPtr arg = ParseCmp();
      if (arg == nullptr) return nullptr;
      int64_t rows = 0;
      int64_t cols = 0;
      if (!ParseIntArg(&rows) || !ParseIntArg(&cols)) return nullptr;
      if (!Match(TokenKind::kRParen)) return FailExpr("expected ')'");
      if (arg->rows() * arg->cols() != rows * cols) {
        return FailExpr("reshape size mismatch: " + Shape(arg) + " to " +
                        std::to_string(rows) + "x" + std::to_string(cols));
      }
      return ExprNode::Reshape(arg, rows, cols);
    }

    ExprPtr first = ParseCmp();
    if (first == nullptr) return nullptr;

    if (func == "t" || func == "diag" || func == "rowSums" ||
        func == "colSums") {
      if (!Match(TokenKind::kRParen)) return FailExpr("expected ')'");
      if (func == "t") return ExprNode::Transpose(first);
      if (func == "rowSums") return ExprNode::RowSums(first);
      if (func == "colSums") return ExprNode::ColSums(first);
      // diag
      if (first->cols() != 1 && first->rows() != first->cols()) {
        return FailExpr("diag expects a column vector or a square matrix");
      }
      return ExprNode::Diag(first);
    }

    if (func == "rbind" || func == "cbind" || func == "min" ||
        func == "max") {
      if (!Match(TokenKind::kComma)) {
        return FailExpr("'" + func + "' expects two arguments");
      }
      ExprPtr second = ParseCmp();
      if (second == nullptr) return nullptr;
      if (!Match(TokenKind::kRParen)) return FailExpr("expected ')'");
      if (func == "rbind") {
        if (first->cols() != second->cols()) {
          return FailExpr("rbind column mismatch: " + Shape(first) + " vs " +
                          Shape(second));
        }
        return ExprNode::RBind(first, second);
      }
      if (func == "cbind") {
        if (first->rows() != second->rows()) {
          return FailExpr("cbind row mismatch: " + Shape(first) + " vs " +
                          Shape(second));
        }
        return ExprNode::CBind(first, second);
      }
      if (first->rows() != second->rows() ||
          first->cols() != second->cols()) {
        return FailExpr("shape mismatch for '" + func + "': " +
                        Shape(first) + " vs " + Shape(second));
      }
      return func == "min" ? ExprNode::EWiseMin(first, second)
                           : ExprNode::EWiseMax(first, second);
    }

    return FailExpr("unknown function '" + func + "'");
  }

  bool ParseIntArg(int64_t* out) {
    if (!Match(TokenKind::kComma)) {
      (void)Fail("expected ',' before a dimension argument");
      return false;
    }
    if (Peek().kind != TokenKind::kNumber) {
      (void)Fail("expected a numeric dimension argument");
      return false;
    }
    *out = static_cast<int64_t>(Advance().number);
    if (*out <= 0) {
      (void)Fail("dimension arguments must be positive");
      return false;
    }
    return true;
  }

  static std::string Shape(const ExprPtr& e) {
    return std::to_string(e->rows()) + "x" + std::to_string(e->cols());
  }

  std::vector<Token> tokens_;
  const std::map<std::string, Matrix>& bindings_;
  const std::map<std::string, ExprPtr>* leaf_bindings_ = nullptr;
  std::map<std::string, ExprPtr> env_;
  size_t index_ = 0;
  std::string error_;
};

}  // namespace

ParseResult ParseExpression(const std::string& source,
                            const std::map<std::string, Matrix>& bindings) {
  std::vector<Token> tokens;
  std::string error;
  if (!Tokenize(source, tokens, error)) {
    return {nullptr, error};
  }
  Parser parser(std::move(tokens), bindings);
  return parser.Run();
}

ParseResult ParseExpression(
    const std::string& source, const std::map<std::string, Matrix>& bindings,
    const std::map<std::string, ExprPtr>& leaf_bindings) {
  std::vector<Token> tokens;
  std::string error;
  if (!Tokenize(source, tokens, error)) {
    return {nullptr, error};
  }
  Parser parser(std::move(tokens), bindings, &leaf_bindings);
  return parser.Run();
}

ParseResult ParseProgram(const std::string& source,
                         const std::map<std::string, Matrix>& bindings) {
  std::vector<Token> tokens;
  std::string error;
  if (!Tokenize(source, tokens, error)) {
    return {nullptr, error};
  }
  Parser parser(std::move(tokens), bindings);
  return parser.RunProgram();
}

ParseResult ParseProgram(const std::string& source,
                         const std::map<std::string, Matrix>& bindings,
                         const std::map<std::string, ExprPtr>& leaf_bindings) {
  std::vector<Token> tokens;
  std::string error;
  if (!Tokenize(source, tokens, error)) {
    return {nullptr, error};
  }
  Parser parser(std::move(tokens), bindings, &leaf_bindings);
  return parser.RunProgram();
}

}  // namespace mnc
