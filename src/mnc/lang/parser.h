// A small DML/R-like expression language front end.
//
// ML systems compile linear-algebra scripts into operator DAGs and estimate
// sparsity during that compilation (§1). This parser provides the same
// entry point for the library: a textual expression over named matrices is
// parsed into the mnc IR, ready for estimation, propagation, and execution.
//
// Grammar (precedence low to high):
//   expr     := add
//   add      := emul ( '+' emul )*
//   emul     := matmul ( '*' matmul )*                 element-wise multiply
//   matmul   := postfix ( '%*%' postfix )*             matrix product
//   postfix  := primary ( "!=" "0" | "==" "0" )*
//   primary  := NUMBER '*' primary                     scalar scaling
//            |  IDENT
//            |  FUNC '(' expr ( ',' expr | ',' NUMBER )* ')'
//            |  '(' expr ')'
//   FUNC     := t | reshape | diag | rbind | cbind | min | max
//            |  rowSums | colSums
//
// Examples:
//   "X %*% W"
//   "reshape(X %*% W, 2000, 12000)"
//   "(P %*% X != 0) * (P %*% L %*% t(R))"
//   "X * ((R * S + T) != 0)"
//   "0.5 * rowSums(A + B)"

#ifndef MNC_LANG_PARSER_H_
#define MNC_LANG_PARSER_H_

#include <map>
#include <string>

#include "mnc/ir/expr.h"

namespace mnc {

struct ParseResult {
  ExprPtr expr;        // null on failure
  std::string error;   // human-readable message on failure

  bool ok() const { return expr != nullptr; }
};

// Parses `source` into an expression DAG. Identifiers resolve against
// `bindings`; unknown identifiers, syntax errors, and shape mismatches
// produce a ParseResult with a descriptive error (shape checks are
// performed during construction, reported as errors rather than aborts).
ParseResult ParseExpression(const std::string& source,
                            const std::map<std::string, Matrix>& bindings);

// Like above, but identifiers additionally resolve against `leaf_bindings`
// — pre-built leaf nodes (matrix-backed or sketch-only, e.g. a service
// catalog of streaming registrations). Resolution order: script assignments,
// then leaf_bindings, then bindings. Sharing the ExprPtr keeps repeated
// references pointing at the caller's node, so downstream memoization by
// node identity applies across calls.
ParseResult ParseExpression(const std::string& source,
                            const std::map<std::string, Matrix>& bindings,
                            const std::map<std::string, ExprPtr>& leaf_bindings);

// Parses a multi-statement script:
//
//   Y = X %*% W;
//   M = Y != 0;
//   M * Y
//
// Statements are ';'-separated; `name = expr` binds an intermediate that
// later statements reference *by DAG node* (shared subexpressions evaluate
// once), mirroring how ML systems compile scripts into operator DAGs. The
// value of the script is the final statement's expression (a bare
// expression, or the last assignment's right-hand side). Assignments may
// shadow matrix bindings and earlier assignments.
ParseResult ParseProgram(const std::string& source,
                         const std::map<std::string, Matrix>& bindings);

// ParseProgram with pre-built leaf nodes; see the ParseExpression overload.
ParseResult ParseProgram(const std::string& source,
                         const std::map<std::string, Matrix>& bindings,
                         const std::map<std::string, ExprPtr>& leaf_bindings);

}  // namespace mnc

#endif  // MNC_LANG_PARSER_H_
