// Recoverable-error substrate: Status, StatusOr<T>, and propagation macros.
//
// The library distinguishes two failure classes (see DESIGN.md, "Error
// handling policy"):
//   - programming errors (violated invariants/preconditions) abort via
//     MNC_CHECK — they indicate a bug, not bad data;
//   - untrusted-input and environment failures (corrupt files, truncated
//     wires, missing worker partitions, over-budget synopses) are reported
//     as Status/StatusOr so callers can recover, retry, or degrade.
// No exceptions cross library boundaries: Status is the only error channel
// for recoverable failures.

#ifndef MNC_UTIL_STATUS_H_
#define MNC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "mnc/util/check.h"

namespace mnc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // malformed request or input value
  kNotFound,            // file/resource does not exist
  kDataLoss,            // corruption detected (bad magic, CRC mismatch, ...)
  kOutOfRange,          // declared sizes exceed sane/available bounds
  kFailedPrecondition,  // operation not applicable in the current state
  kResourceExhausted,   // a budget (bytes, tiers) was exceeded
  kUnavailable,         // transient: missing partition, failed worker
  kUnimplemented,       // operation not supported by this component
  kInternal,            // invariant said to hold by a dependency did not
  kDeadlineExceeded,    // request deadline passed or request was cancelled
};

// Human-readable code name ("DATA_LOSS", ...).
const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Context chaining: prepends "<context>: " to the message, preserving the
  // code. Lets each layer of a failing call stack name its contribution,
  // e.g. "merge partition 3: section hr: CRC mismatch at offset 54".
  Status& AddContext(const std::string& context) {
    if (!ok()) message_ = context + ": " + message_;
    return *this;
  }
  Status WithContext(const std::string& context) const& {
    Status s = *this;
    s.AddContext(context);
    return s;
  }
  Status WithContext(const std::string& context) && {
    AddContext(context);
    return std::move(*this);
  }

  // "OK" or "DATA_LOSS: section hr: CRC mismatch".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Value-or-error result. Accessing the value of a non-OK StatusOr is a
// programming error (aborts); callers must test ok() first or use the
// MNC_ASSIGN_OR_RETURN macro.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit so `return MakeSketch(...);` and
  // `return Status::DataLoss(...);` both work as StatusOr returns.
  StatusOr(T value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    MNC_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  bool has_value() const { return ok(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    MNC_CHECK_MSG(ok(), "StatusOr::value() called on error status");
    return *value_;
  }
  T& value() & {
    MNC_CHECK_MSG(ok(), "StatusOr::value() called on error status");
    return *value_;
  }
  T&& value() && {
    MNC_CHECK_MSG(ok(), "StatusOr::value() called on error status");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // value_or-style escape hatch for optional degradation paths.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  StatusOr& AddContext(const std::string& context) {
    status_.AddContext(context);
    return *this;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
// MNC_ASSIGN_OR_RETURN helper: extracts the Status from either a Status or a
// StatusOr<T> expression.
inline const Status& ToStatus(const Status& s) { return s; }
template <typename T>
const Status& ToStatus(const StatusOr<T>& s) {
  return s.status();
}
}  // namespace internal

}  // namespace mnc

// Propagates a non-OK Status from `expr` out of the enclosing function.
#define MNC_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::mnc::Status mnc_status_ = (expr);              \
    if (!mnc_status_.ok()) return mnc_status_;       \
  } while (0)

#define MNC_STATUS_CONCAT_INNER_(a, b) a##b
#define MNC_STATUS_CONCAT_(a, b) MNC_STATUS_CONCAT_INNER_(a, b)

// Evaluates a StatusOr<T> expression; on success assigns the value to `lhs`
// (which may be a declaration), on error returns the Status.
#define MNC_ASSIGN_OR_RETURN(lhs, expr)                                     \
  MNC_ASSIGN_OR_RETURN_IMPL_(                                               \
      MNC_STATUS_CONCAT_(mnc_statusor_, __COUNTER__), lhs, expr)

#define MNC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)                          \
  auto tmp = (expr);                                                        \
  if (!tmp.ok()) return ::mnc::internal::ToStatus(tmp);                     \
  lhs = std::move(tmp).value()

#endif  // MNC_UTIL_STATUS_H_
