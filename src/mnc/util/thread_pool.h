// A minimal fixed-size thread pool with a parallel-for helper.
//
// Used only where the paper uses multi-threading: the FP64 ground-truth
// matrix multiply and the Appendix-B multi-threaded bitset estimator. All
// sparsity estimators default to single-threaded execution, matching the
// experimental setup in §6.1 of the paper.

#ifndef MNC_UTIL_THREAD_POOL_H_
#define MNC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mnc {

class ThreadPool {
 public:
  // Creates a pool with num_threads workers; num_threads <= 0 selects the
  // hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs fn(begin, end) over [0, n) split into roughly equal contiguous
  // ranges, one per worker, and blocks until all ranges complete. Safe to
  // call with n == 0 (no-op).
  void ParallelFor(int64_t n,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mnc

#endif  // MNC_UTIL_THREAD_POOL_H_
