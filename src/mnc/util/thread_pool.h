// A minimal fixed-size thread pool with parallel-for helpers.
//
// Backs every multi-threaded path in the library: the FP64 ground-truth
// matrix multiply, the Appendix-B multi-threaded bitset estimator, and the
// ParallelConfig-gated kernels (parallel sketch construction, Algorithm 1
// estimation, Eq. 11 propagation, SpGEMM — see mnc/util/parallel.h).
// Estimators still default to single-threaded execution, matching §6.1 of
// the paper.
//
// Failure semantics: an exception escaping a task never reaches the worker
// thread (which would std::terminate). ParallelFor captures the first chunk
// failure and rethrows it to the waiter once all chunks have finished;
// TryParallelFor reports it as a Status instead. Fail point
// "threadpool.task" simulates a worker-task failure. Destroying the pool
// with tasks still queued drains them (every submitted task runs).
//
// Nesting: a ParallelFor waiter does not block idly — it executes queued
// tasks itself until its own chunks are done. Calling ParallelFor from
// inside a pool task (e.g. EstimateBatch entries that themselves fan out
// over the same pool) therefore always makes progress instead of
// deadlocking with every worker parked on a nested wait.

#ifndef MNC_UTIL_THREAD_POOL_H_
#define MNC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "mnc/util/status.h"

namespace mnc {

class ThreadPool {
 public:
  // Creates a pool with num_threads workers; num_threads <= 0 selects the
  // hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one detached task. An exception thrown by `task` is captured
  // (instead of terminating the worker); the first such failure is
  // retrievable via TakeFirstTaskError().
  void Submit(std::function<void()> task);

  // Runs fn(begin, end) over [0, n) split into roughly equal contiguous
  // ranges, one per worker, and blocks until all ranges complete. Safe to
  // call with n == 0 (no-op). If a chunk throws, the first exception is
  // rethrown here, in the waiting thread, after all chunks finish.
  void ParallelFor(int64_t n,
                   const std::function<void(int64_t, int64_t)>& fn);

  // Runs fn(lo, hi) over contiguous subranges of [begin, end), each at least
  // `grain` elements (except possibly the last), with up to 4 chunks per
  // worker for load balance on skewed work. Same completion and exception
  // semantics as ParallelFor(n, fn). grain <= 0 behaves like grain == 1.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  // Like ParallelFor, but converts the first chunk failure into a Status
  // (kInternal, carrying the exception message) instead of rethrowing.
  Status TryParallelFor(int64_t n,
                        const std::function<void(int64_t, int64_t)>& fn);

  // First failure captured from a Submit()ed task since the last call, as a
  // Status (OK if none). Clears the stored failure.
  Status TakeFirstTaskError();

 private:
  void WorkerLoop();
  // Shared chunked execution over [begin, end) with at most `max_chunks`
  // chunks; returns the first chunk failure (or nullptr). The caller thread
  // helps execute queued tasks while it waits (see "Nesting" above).
  std::exception_ptr RunChunks(int64_t begin, int64_t end, int64_t max_chunks,
                               const std::function<void(int64_t, int64_t)>& fn);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::exception_ptr first_task_error_;  // from detached Submit() tasks
};

}  // namespace mnc

#endif  // MNC_UTIL_THREAD_POOL_H_
