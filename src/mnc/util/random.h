// Seeded pseudo-random number generation for data generators and estimators.
//
// All randomized components of the library (matrix generators, probabilistic
// rounding in sketch propagation, sampling estimators, layered-graph
// r-vectors) draw from an explicitly seeded Rng so that experiments and tests
// are reproducible. The engine is xoshiro256**, seeded via splitmix64.

#ifndef MNC_UTIL_RANDOM_H_
#define MNC_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mnc {

// Mixes two 64-bit values into a well-distributed derived seed (splitmix64
// finalizer). Used to derive independent per-block PRNG streams from a base
// seed and a stream/block index: Rng(MixSeed(MixSeed(seed, stream), block)).
uint64_t MixSeed(uint64_t a, uint64_t b);

// A small, fast, explicitly seeded PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Raw 64 random bits.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponentially distributed value with rate lambda (> 0).
  double Exponential(double lambda = 1.0);

  // Standard normal via Box-Muller.
  double Gaussian();

  // Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(j)]);
    }
  }

  // Draws k distinct integers from [0, n) (k <= n), in ascending order.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

 private:
  uint64_t s_[4];
};

// Samples from a Zipf(s) distribution over {0, 1, ..., n-1}: value k has
// probability proportional to 1 / (k+1)^s. Uses the inverse-CDF method over a
// precomputed cumulative table, so construction is O(n) and sampling is
// O(log n). Suitable for the power-law column/degree distributions used by
// the SparsEst data generators.
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double s);

  int64_t operator()(Rng& rng) const;

  int64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  int64_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace mnc

#endif  // MNC_UTIL_RANDOM_H_
