#include "mnc/util/status.h"

namespace mnc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace mnc
