// SIMD capability model for the vectorized kernel layer (mnc/kernels/).
//
// Three instruction-set levels exist: portable scalar (always available),
// AVX2 (x86-64) and NEON (aarch64). Which levels are *compiled in* is decided
// here at compile time; which level actually *runs* is decided once per
// process by BestSupportedSimdLevel(): compiled-in levels are intersected
// with the CPU's capabilities (cpuid on x86) and with the MNC_SIMD
// environment variable ("scalar" | "avx2" | "neon"), which can force a lower
// level — most usefully MNC_SIMD=scalar for differential testing. Requesting
// a level the build or CPU cannot run falls back to the best available one
// (with a one-time stderr warning), so setting MNC_SIMD never crashes.
//
// The CMake option -DMNC_DISABLE_SIMD=ON (which defines MNC_DISABLE_SIMD)
// removes the vector code paths from the build entirely; the dispatch then
// degenerates to scalar and MNC_SIMD is a no-op.
//
// Numeric contract (see DESIGN.md "Kernel dispatch & vectorization"): every
// integer/bitset kernel and every elementwise double kernel is bit-identical
// across levels; only the dot-product reductions may differ, by float
// reassociation alone, and even those are exact (hence level-invariant)
// whenever all partial sums stay below 2^53 — true for every realistic
// sketch, since the summands are products of integer counts.

#ifndef MNC_UTIL_SIMD_H_
#define MNC_UTIL_SIMD_H_

namespace mnc {

// Compile-time availability of the vector backends.
#if !defined(MNC_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define MNC_SIMD_HAVE_AVX2 1
#else
#define MNC_SIMD_HAVE_AVX2 0
#endif

#if !defined(MNC_DISABLE_SIMD) && defined(__aarch64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define MNC_SIMD_HAVE_NEON 1
#else
#define MNC_SIMD_HAVE_NEON 0
#endif

enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

// Human-readable level name ("scalar", "avx2", "neon").
const char* SimdLevelName(SimdLevel level);

// Parses a MNC_SIMD-style spec. Returns true and sets *level on success;
// unknown names return false (callers then keep the detected default).
bool ParseSimdLevel(const char* spec, SimdLevel* level);

// True when `level` is both compiled in and executable on this CPU.
bool SimdLevelSupported(SimdLevel level);

// The level the kernel dispatch resolves to: best CPU-supported compiled-in
// level, overridable via MNC_SIMD. Computed once and cached (the environment
// is read on first use; tests override the *kernel table* instead, via
// kernels::ScopedForceKernels, not the environment).
SimdLevel BestSupportedSimdLevel();

}  // namespace mnc

#endif  // MNC_UTIL_SIMD_H_
