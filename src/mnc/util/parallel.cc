#include "mnc/util/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "mnc/util/check.h"
#include "mnc/tuning/machine_profile.h"

namespace mnc {

ParallelConfig ParallelConfig::FromProfile(
    const tuning::MachineProfile* profile, int num_threads) {
  ParallelConfig config;
  config.profile = profile;
  if (num_threads != 0) {
    config.num_threads = num_threads;
  } else if (profile != nullptr) {
    config.num_threads = profile->calibrated_threads;
  }
  return config;
}

ParallelConfig ParallelConfig::ForStage(TunedStage stage, int64_t work) const {
  ParallelConfig out = *this;
  if (!out.enabled()) return out;  // already sequential: nothing to decide
  const tuning::MachineProfile* p =
      profile != nullptr ? profile : tuning::ActiveProfileRaw();
  if (p == nullptr) return out;
  if (!p->ShouldParallelize(stage, work)) {
    // Below the measured crossover the parallel path loses to sequential.
    // Dropping to one thread keeps the identical fixed-size block layout,
    // so the output is bit-for-bit the same (determinism contract).
    out.num_threads = 1;
    return out;
  }
  if (stage == TunedStage::kSketchBuild || stage == TunedStage::kSpGemm) {
    // Grain-invariant stages (integer merges / disjoint per-row output) may
    // adopt the calibrated block size; the FP/PRNG stages must not.
    const int64_t grain = p->stage(stage).grain;
    if (grain > 0 && out.deterministic) out.min_rows_per_task = grain;
  }
  return out;
}

int ParallelConfig::ResolvedThreads() const {
  if (num_threads > 0) return num_threads;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 2;
}

int64_t ParallelConfig::BlockSize(int64_t n) const {
  const int64_t grain = std::max<int64_t>(1, min_rows_per_task);
  if (deterministic) return grain;
  // Thread-count-sized blocks, never smaller than the grain.
  const int64_t threads = static_cast<int64_t>(ResolvedThreads());
  return std::max(grain, (n + threads - 1) / threads);
}

int64_t ParallelConfig::NumBlocks(int64_t n) const {
  if (n <= 0) return 0;
  const int64_t bs = BlockSize(n);
  return (n + bs - 1) / bs;
}

void ParallelForBlocks(
    ThreadPool* pool, const ParallelConfig& config, int64_t n,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t bs = config.BlockSize(n);
  const int64_t num_blocks = (n + bs - 1) / bs;

  auto run_range = [&](int64_t first_block, int64_t last_block) {
    for (int64_t b = first_block; b < last_block; ++b) {
      fn(b, b * bs, std::min(n, (b + 1) * bs));
    }
  };

  if (pool == nullptr || !config.enabled() || num_blocks <= 1) {
    run_range(0, num_blocks);
    return;
  }
  pool->ParallelFor(0, num_blocks, /*grain=*/1, run_range);
}

double BlockedSum(ThreadPool* pool, const ParallelConfig& config, int64_t n,
                  const std::function<double(int64_t, int64_t)>& block_sum) {
  if (n <= 0) return 0.0;
  std::vector<double> partial(static_cast<size_t>(config.NumBlocks(n)), 0.0);
  ParallelForBlocks(pool, config, n,
                    [&](int64_t block, int64_t begin, int64_t end) {
                      partial[static_cast<size_t>(block)] =
                          block_sum(begin, end);
                    });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

}  // namespace mnc
