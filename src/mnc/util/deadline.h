// Cooperative per-request execution bounds: deadlines and cancellation.
//
// The serving tier (mnc/serve/) attaches a RequestContext to every request it
// dispatches; the estimation paths check it at step boundaries (per-node in
// ComputeSketch, per-entry in EstimateBatch) and return kDeadlineExceeded
// instead of running past the budget. Checks are cooperative — nothing is
// interrupted mid-kernel — so an expired request stops at the next node
// boundary, never leaves shared state (catalog, memo) half-written, and never
// degrades to the fallback chain (a late answer is not an answer).
//
// Both pieces are passive: a CancelToken is flipped by whoever owns the
// request (e.g. the server noticing a dead connection), and the deadline is
// evaluated against steady_clock at each check. Neither requires a timer
// thread.

#ifndef MNC_UTIL_DEADLINE_H_
#define MNC_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "mnc/util/status.h"

namespace mnc {

// One-way cancellation flag, safe to share between the request owner and the
// worker running the request.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Deadline + cancellation view passed (by const pointer, optionally null)
// down the estimation call stack. Copyable; does not own the token.
class RequestContext {
 public:
  RequestContext() = default;

  static RequestContext WithDeadlineAfterMillis(int64_t ms) {
    RequestContext ctx;
    ctx.deadline_ =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return ctx;
  }

  // An already-expired context: every Check fails. Used by the server's
  // "serve.deadline" fail point to force the expiry path deterministically.
  static RequestContext Expired() { return WithDeadlineAfterMillis(-1); }

  void set_cancel_token(const CancelToken* token) { token_ = token; }
  bool has_deadline() const { return deadline_.has_value(); }

  // Milliseconds until expiry (<= 0 when expired); nullopt without deadline.
  std::optional<int64_t> RemainingMillis() const {
    if (!deadline_.has_value()) return std::nullopt;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               *deadline_ - std::chrono::steady_clock::now())
        .count();
  }

  bool expired() const {
    if (token_ != nullptr && token_->cancelled()) return true;
    return deadline_.has_value() &&
           std::chrono::steady_clock::now() >= *deadline_;
  }

  // OK while the request may keep running; kDeadlineExceeded (naming `site`)
  // once the deadline passed or the token was cancelled.
  Status Check(const std::string& site) const {
    if (token_ != nullptr && token_->cancelled()) {
      return Status::DeadlineExceeded(site + ": request cancelled");
    }
    if (deadline_.has_value() &&
        std::chrono::steady_clock::now() >= *deadline_) {
      return Status::DeadlineExceeded(site + ": deadline exceeded");
    }
    return Status::Ok();
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  const CancelToken* token_ = nullptr;
};

}  // namespace mnc

#endif  // MNC_UTIL_DEADLINE_H_
