#include "mnc/util/fail_point.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace mnc {

struct FailPointRegistry::Impl {
  struct Point {
    bool armed = false;
    int64_t skip = 0;
    int64_t count = -1;
    int64_t hits = 0;  // hits since last Arm/Reset
  };
  mutable std::mutex mu;
  std::map<std::string, Point> points;
};

FailPointRegistry::FailPointRegistry() : impl_(new Impl) {
  const char* env = std::getenv("MNC_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    const StatusOr<int> armed = ArmFromSpec(env);
    if (!armed.ok()) {
      // Refuse to run with a fault spec that would arm nothing it promised:
      // the operator believes a fault is injected, and every test downstream
      // would pass vacuously against un-faulted code.
      std::fprintf(stderr, "MNC_FAILPOINTS: %s\n",
                   armed.status().ToString().c_str());
      std::exit(2);
    }
  }
}

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry* registry = new FailPointRegistry();
  return *registry;
}

namespace {
// Force the registry — and thus MNC_FAILPOINTS validation — at process
// start of every binary linking the library. Lazy construction alone would
// let a run that never evaluates any fail point skip the parse entirely,
// and a typo'd spec would be ignored silently: the exact vacuous pass the
// exit-2 policy above exists to prevent.
const bool g_env_spec_validated = [] {
  FailPointRegistry::Instance();
  return true;
}();
}  // namespace

void FailPointRegistry::Arm(const std::string& name, int64_t skip,
                            int64_t count) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl::Point& p = impl_->points[name];
  p.armed = true;
  p.skip = skip;
  p.count = count;
  p.hits = 0;
}

void FailPointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  if (it != impl_->points.end()) it->second.armed = false;
}

void FailPointRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->points.clear();
}

bool FailPointRegistry::ShouldFail(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  if (it == impl_->points.end()) {
    // Track hits at unarmed sites too, so tests can assert coverage.
    impl_->points[name].hits = 1;
    return false;
  }
  Impl::Point& p = it->second;
  const int64_t hit = p.hits++;
  if (!p.armed) return false;
  if (hit < p.skip) return false;
  if (p.count >= 0 && hit >= p.skip + p.count) return false;
  return true;
}

int64_t FailPointRegistry::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  return it == impl_->points.end() ? 0 : it->second.hits;
}

bool FailPointRegistry::IsArmed(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  return it != impl_->points.end() && it->second.armed;
}

std::vector<std::string> FailPointRegistry::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> names;
  for (const auto& [name, p] : impl_->points) {
    if (p.armed) names.push_back(name);
  }
  return names;
}

StatusOr<int> FailPointRegistry::ArmFromSpec(const std::string& spec) {
  int armed = 0;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t sep = spec.find(';', pos);
    const std::string entry =
        spec.substr(pos, sep == std::string::npos ? sep : sep - pos);
    pos = sep == std::string::npos ? spec.size() + 1 : sep + 1;
    if (entry.empty()) continue;  // benign: "a;;b", trailing ';'

    std::string name = entry;
    int64_t skip = 0;
    int64_t count = -1;
    const size_t eq = entry.find('=');
    if (eq != std::string::npos) {
      name = entry.substr(0, eq);
      const std::string params = entry.substr(eq + 1);
      char* end = nullptr;
      skip = std::strtoll(params.c_str(), &end, 10);
      if (end == params.c_str()) {
        return Status::InvalidArgument("fail point entry '" + entry +
                                       "': expected numeric skip after '='");
      }
      if (*end == ':') {
        const char* count_str = end + 1;
        count = std::strtoll(count_str, &end, 10);
        if (end == count_str) {
          return Status::InvalidArgument(
              "fail point entry '" + entry +
              "': expected numeric count after ':'");
        }
      }
      if (*end != '\0') {
        return Status::InvalidArgument("fail point entry '" + entry +
                                       "': trailing garbage '" + end + "'");
      }
    }
    if (name.empty()) {
      return Status::InvalidArgument("fail point entry '" + entry +
                                     "': empty point name");
    }
    // The ingest.* namespace is closed: its points gate the spill/fault-back
    // chain, where a typo'd spec silently arming nothing would let a
    // degradation test pass vacuously. Names must be string literals here
    // (no registry of sites exists at static-init time).
    if (name.rfind("ingest.", 0) == 0 && name != "ingest.read_chunk" &&
        name != "ingest.spill_write" && name != "ingest.spill_read") {
      return Status::InvalidArgument(
          "fail point entry '" + entry + "': unknown ingest point '" + name +
          "' (ingest.read_chunk, ingest.spill_write, ingest.spill_read)");
    }
    // tuning.* is closed for the same reason: a typo'd calibration fault
    // spec must not let a profile fault drill pass vacuously.
    if (name.rfind("tuning.", 0) == 0 && name != "tuning.measure" &&
        name != "tuning.profile_read") {
      return Status::InvalidArgument(
          "fail point entry '" + entry + "': unknown tuning point '" + name +
          "' (tuning.measure, tuning.profile_read)");
    }
    // service.* is closed too: these points drive the degradation and
    // cache-poisoning drills of the estimation service, where a typo'd
    // name would likewise pass vacuously.
    if (name.rfind("service.", 0) == 0 && name != "service.sketch_build" &&
        name != "service.memo_poison" && name != "service.catalog_read" &&
        name != "service.plan_poison") {
      return Status::InvalidArgument(
          "fail point entry '" + entry + "': unknown service point '" + name +
          "' (service.sketch_build, service.memo_poison, "
          "service.catalog_read, service.plan_poison)");
    }
    Arm(name, skip, count);
    ++armed;
  }
  return armed;
}

}  // namespace mnc
