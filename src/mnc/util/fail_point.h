// Named fault-injection points for deterministic failure testing.
//
// A fail point is a named site in library code that tests (or operators, via
// the MNC_FAILPOINTS environment variable) can arm to simulate a failure:
// mid-write truncation in sketch serialization, short reads in Matrix-Market
// parsing, worker-task failures in the thread pool, or a disabled estimator
// tier in the fallback chain. Points are inert (one branch on an atomic
// counter) unless armed.
//
// Programmatic use in tests:
//
//   ScopedFailPoint fp("sketch_io.write_truncate");        // always fire
//   ScopedFailPoint fp("threadpool.task", /*skip=*/2,      // fire on hits
//                      /*count=*/1);                       // 3 only
//
// Environment use (parsed and armed at process start — a static
// initializer in fail_point.cc touches the registry so validation cannot
// be skipped by a run that never evaluates any point):
//
//   MNC_FAILPOINTS="sketch_io.write_truncate;threadpool.task=2:1"
//
// A malformed MNC_FAILPOINTS value terminates the process with a diagnostic
// (exit 2): a typo'd spec silently arming nothing would let fault tests pass
// vacuously. Programmatic callers get the same strictness as a Status from
// ArmFromSpec.
//
// Library-side sites call MncFailPointArmed("name"), which also counts hits
// so tests can assert a site was actually reached.
//
// Names are free-form except the ingest.* and tuning.* namespaces, which
// are closed: ArmFromSpec rejects any ingest.-prefixed name other than
// ingest.read_chunk, ingest.spill_write, and ingest.spill_read, and any
// tuning.-prefixed name other than tuning.measure and tuning.profile_read,
// so a typo'd fault spec fails loudly instead of arming nothing.

#ifndef MNC_UTIL_FAIL_POINT_H_
#define MNC_UTIL_FAIL_POINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mnc/util/status.h"

namespace mnc {

class FailPointRegistry {
 public:
  // Global registry; parses MNC_FAILPOINTS on first access.
  static FailPointRegistry& Instance();

  // Arms `name`: after `skip` non-firing hits, the next `count` hits fire
  // (count < 0 means "fire forever"). Re-arming resets the hit counter.
  void Arm(const std::string& name, int64_t skip = 0, int64_t count = -1);

  // Disarms `name`; hits no longer fire (hit counting continues).
  void Disarm(const std::string& name);

  // Disarms everything and zeroes all hit counters.
  void Reset();

  // Called at the instrumented site. Counts the hit and returns true if the
  // point is armed and its skip/count window says to fire. Thread-safe.
  bool ShouldFail(const std::string& name);

  // Total hits (firing or not) observed at `name` since the last Reset/Arm.
  int64_t HitCount(const std::string& name) const;

  // True if `name` is currently armed (regardless of skip/count window).
  bool IsArmed(const std::string& name) const;

  // Names of all currently armed points (for diagnostics).
  std::vector<std::string> ArmedPoints() const;

  // Parses a spec like "a;b=skip:count;c=skip" and arms each entry.
  // Returns the number of points armed. A malformed entry (empty name,
  // non-numeric or trailing-garbage skip/count) yields kInvalidArgument
  // naming the offending entry; entries before it are already armed, the
  // rest are not. Empty entries between separators are ignored. A typo'd
  // spec must never arm silently nothing — tests would pass vacuously with
  // their fault "armed".
  StatusOr<int> ArmFromSpec(const std::string& spec);

 private:
  FailPointRegistry();
  struct Impl;
  Impl* impl_;  // intentionally leaked singleton state
};

// Site-side helper: true if the named fail point should fire now.
inline bool MncFailPointArmed(const char* name) {
  return FailPointRegistry::Instance().ShouldFail(name);
}

// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFailPoint {
 public:
  explicit ScopedFailPoint(std::string name, int64_t skip = 0,
                           int64_t count = -1)
      : name_(std::move(name)) {
    FailPointRegistry::Instance().Arm(name_, skip, count);
  }
  ~ScopedFailPoint() { FailPointRegistry::Instance().Disarm(name_); }

  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace mnc

#endif  // MNC_UTIL_FAIL_POINT_H_
