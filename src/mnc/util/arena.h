// Reusable scratch memory for the row-wise hot paths.
//
// The Gustavson SpGEMM passes and the parallel density-map combine each need
// per-worker scratch (a dense accumulator, an occupancy map, staging
// vectors). Before this layer every parallel block allocated and
// zero-initialized its own copies — O(cols) work per block that dwarfs the
// useful work for narrow blocks. A ScratchArena owns those buffers and is
// reused across rows, blocks and calls; a ScratchPool recycles arenas across
// concurrent workers so a w-thread SpGEMM allocates at most w arenas per
// process lifetime, not one per block.
//
// Clean-buffer invariant: scatter_acc()/scatter_seen() are all-zero whenever
// the arena is at rest. The SpGemm*Row kernels (mnc/kernels/kernels.h)
// preserve this by re-zeroing exactly the entries they touched during their
// gather/reset step, so EnsureScatterCols() only pays a zero-fill when the
// buffers actually grow. Code that touches these buffers outside the kernel
// helpers must restore the invariant before the arena goes back to the pool.
//
// Exception safety: a Lease returned while an exception is unwinding
// *discards* its arena instead of recycling it — a throw mid-row leaves the
// scatter buffers dirty, and a dirty arena must never re-enter the pool.

#ifndef MNC_UTIL_ARENA_H_
#define MNC_UTIL_ARENA_H_

#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

namespace mnc {

// Per-worker scratch buffers. Not thread-safe; one arena per worker.
class ScratchArena {
 public:
  // Grows the scatter buffers to cover `cols` columns. New space is
  // zero-filled; existing space is already zero by the clean-buffer
  // invariant, so repeat calls with the same width are free.
  void EnsureScatterCols(int64_t cols) {
    const size_t n = static_cast<size_t>(cols);
    if (scatter_acc_.size() < n) {
      scatter_acc_.resize(n, 0.0);
      scatter_seen_.resize(n, 0);
    }
  }

  // Dense value accumulator / occupancy map over the column space. All-zero
  // on acquisition (see the clean-buffer invariant above).
  double* scatter_acc() { return scatter_acc_.data(); }
  char* scatter_seen() { return scatter_seen_.data(); }

  // Touched-column list for the current row; empty between rows, capacity
  // retained.
  std::vector<int64_t>& scatter_list() { return scatter_list_; }

  // General staging vectors (per-block partials, Eq. 11/15 estimate
  // buffers). Resized to n with unspecified contents; capacity is retained
  // across uses.
  std::vector<double>& StageDoubles(size_t n) {
    stage_doubles_.resize(n);
    return stage_doubles_;
  }
  std::vector<char>& StageBytes(size_t n) {
    stage_bytes_.resize(n);
    return stage_bytes_;
  }

  // Integer staging (gathered count vectors for the per-row product
  // estimates). Two independent vectors so a caller can stage aligned
  // (hr, her) pairs without aliasing.
  std::vector<int64_t>& StageInts(size_t n) {
    stage_ints_.resize(n);
    return stage_ints_;
  }
  std::vector<int64_t>& StageInts2(size_t n) {
    stage_ints2_.resize(n);
    return stage_ints2_;
  }

  // Grow-only all-ones vector: the neutral operand for the count-dot /
  // density-combine kernels when one side is a gathered vector and the
  // other is implicitly 1. Callers must not modify the contents.
  const int64_t* StageOnes(size_t n) {
    if (stage_ones_.size() < n) stage_ones_.resize(n, 1);
    return stage_ones_.data();
  }

  // (column, value) staging for the sorted-merge SpGEMM accumulator;
  // cleared per row, capacity retained across rows and leases.
  std::vector<std::pair<int64_t, double>>& merge_pairs() {
    return merge_pairs_;
  }

 private:
  std::vector<double> scatter_acc_;
  std::vector<char> scatter_seen_;
  std::vector<int64_t> scatter_list_;
  std::vector<double> stage_doubles_;
  std::vector<char> stage_bytes_;
  std::vector<int64_t> stage_ints_;
  std::vector<int64_t> stage_ints2_;
  std::vector<int64_t> stage_ones_;
  std::vector<std::pair<int64_t, double>> merge_pairs_;
};

// A mutex-guarded free list of arenas. Acquire() pops a recycled arena (or
// makes a fresh one); the Lease returns it on destruction.
class ScratchPool {
 public:
  class Lease {
   public:
    explicit Lease(ScratchPool* pool)
        : pool_(pool),
          arena_(pool->Pop()),
          uncaught_on_entry_(std::uncaught_exceptions()) {}

    ~Lease() {
      // Recycle only on clean exit; see the exception-safety note above.
      if (std::uncaught_exceptions() == uncaught_on_entry_) {
        pool_->Push(std::move(arena_));
      }
    }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ScratchArena& operator*() { return *arena_; }
    ScratchArena* operator->() { return arena_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<ScratchArena> arena_;
    int uncaught_on_entry_;
  };

  Lease Acquire() { return Lease(this); }

  // Process-wide pool shared by the estimator, propagation and SpGEMM entry
  // points (including service-level EstimateBatch workers, which reach it
  // transitively through those kernels).
  static ScratchPool& Global();

 private:
  friend class Lease;

  std::unique_ptr<ScratchArena> Pop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<ScratchArena> arena = std::move(free_.back());
        free_.pop_back();
        return arena;
      }
    }
    return std::make_unique<ScratchArena>();
  }

  void Push(std::unique_ptr<ScratchArena> arena) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(arena));
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<ScratchArena>> free_;
};

}  // namespace mnc

#endif  // MNC_UTIL_ARENA_H_
