// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used by the sketch binary
// format v2 to detect corruption of individual sections. Table-driven,
// incremental: Crc32Update lets writers checksum a section as it streams.

#ifndef MNC_UTIL_CRC32_H_
#define MNC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace mnc {

// Incremental update: pass the previous return value (or 0 to start) and the
// next chunk of bytes.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

// One-shot checksum of a buffer.
inline uint32_t Crc32(const void* data, size_t len) {
  return Crc32Update(0, data, len);
}

}  // namespace mnc

#endif  // MNC_UTIL_CRC32_H_
