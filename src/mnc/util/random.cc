#include "mnc/util/random.h"

#include <cmath>

#include "mnc/util/check.h"

namespace mnc {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t MixSeed(uint64_t a, uint64_t b) {
  uint64_t state = a + 0x9E3779B97F4A7C15ULL * (b + 0x632BE59BD9B4E019ULL);
  return SplitMix64(state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  MNC_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Exponential(double lambda) {
  MNC_CHECK_GT(lambda, 0.0);
  // Uniform() is in [0, 1); 1 - Uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - Uniform()) / lambda;
}

double Rng::Gaussian() {
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  MNC_CHECK_GE(n, 0);
  MNC_CHECK_GE(k, 0);
  MNC_CHECK_LE(k, n);
  // Floyd's algorithm would avoid the O(n) vector, but k is usually a
  // constant fraction of n in our use, so reservoir-style selection
  // sampling keeps the output sorted without an extra sort.
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  int64_t remaining = k;
  for (int64_t i = 0; i < n && remaining > 0; ++i) {
    // P(select i) = remaining / (n - i).
    if (UniformInt(n - i) < remaining) {
      out.push_back(i);
      --remaining;
    }
  }
  return out;
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) : n_(n), s_(s) {
  MNC_CHECK_GT(n, 0);
  cdf_.resize(static_cast<size_t>(n));
  double acc = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[static_cast<size_t>(k)] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against round-off in the final bucket.
}

int64_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.Uniform();
  // Binary search for the first bucket with cdf >= u.
  int64_t lo = 0;
  int64_t hi = n_ - 1;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (cdf_[static_cast<size_t>(mid)] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace mnc
