#include "mnc/util/thread_pool.h"

#include <atomic>

#include "mnc/util/check.h"

namespace mnc {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 2;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MNC_CHECK(!stop_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t num_chunks =
      std::min<int64_t>(n, static_cast<int64_t>(workers_.size()));
  if (num_chunks <= 1) {
    fn(0, n);
    return;
  }
  std::atomic<int64_t> remaining{num_chunks};
  std::mutex done_mu;
  std::condition_variable done_cv;
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t begin = c * chunk;
    const int64_t end = std::min(n, begin + chunk);
    Submit([&, begin, end] {
      fn(begin, end);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

}  // namespace mnc
