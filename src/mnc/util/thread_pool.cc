#include "mnc/util/thread_pool.h"

#include <stdexcept>
#include <utility>

#include "mnc/util/check.h"
#include "mnc/util/fail_point.h"

namespace mnc {

namespace {

// Best-effort human-readable description of a captured task failure.
std::string DescribeException(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception type";
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 2;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MNC_CHECK(!stop_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

Status ThreadPool::TakeFirstTaskError() {
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(mu_);
    e = std::exchange(first_task_error_, nullptr);
  }
  if (e == nullptr) return Status::Ok();
  return Status::Internal("worker task failed: " + DescribeException(e));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A task failure must never escape into the worker thread — that would
    // std::terminate the process. ParallelFor chunks capture their own
    // failures; this is the backstop for detached Submit() tasks.
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_task_error_ == nullptr) {
        first_task_error_ = std::current_exception();
      }
    }
  }
}

std::exception_ptr ThreadPool::RunChunks(
    int64_t range_begin, int64_t range_end, int64_t max_chunks,
    const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = range_end - range_begin;
  if (n <= 0) return nullptr;

  // Shared state for this call's chunks, all guarded by done_mu. The count
  // is a plain integer on purpose: the last worker's decrement-and-notify
  // and the waiter's exit check must form one critical section, so the
  // worker has fully released done_mu before the waiter can return and
  // destroy it (an atomic count lets the waiter observe zero while the
  // worker still touches the condition variable — a use-after-scope race).
  std::mutex done_mu;
  std::condition_variable done_cv;
  int64_t remaining = 0;
  std::exception_ptr first_error;

  auto run_chunk = [&](int64_t begin, int64_t end) {
    try {
      if (MncFailPointArmed("threadpool.task")) {
        throw std::runtime_error(
            "fail point threadpool.task: simulated worker-task failure for "
            "chunk [" + std::to_string(begin) + ", " + std::to_string(end) +
            ")");
      }
      fn(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(done_mu);
      if (first_error == nullptr) first_error = std::current_exception();
    }
  };

  const int64_t num_chunks = std::min(n, std::max<int64_t>(1, max_chunks));
  if (num_chunks <= 1) {
    run_chunk(range_begin, range_end);
    return first_error;
  }
  remaining = num_chunks;
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t begin = range_begin + c * chunk;
    const int64_t end = std::min(range_end, begin + chunk);
    Submit([&, begin, end] {
      run_chunk(begin, end);
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_all();
    });
  }

  // Helping wait: drain queued tasks (this call's chunks or anyone else's)
  // instead of blocking, so a nested ParallelFor issued from inside a pool
  // task always makes progress even with every worker occupied.
  auto done = [&] {
    std::lock_guard<std::mutex> lock(done_mu);
    return remaining == 0;
  };
  while (!done()) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      }
    }
    if (task) {
      // A stolen task may be an unrelated Submit() task; give it the same
      // failure backstop the worker loop provides.
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (first_task_error_ == nullptr) {
          first_task_error_ = std::current_exception();
        }
      }
      continue;
    }
    // Queue empty: every outstanding chunk is in flight on a worker, so
    // there is nothing left to help with — sleep until the last one lands.
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  return first_error;
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int64_t)>& fn) {
  std::exception_ptr e =
      RunChunks(0, n, static_cast<int64_t>(workers_.size()), fn);
  if (e != nullptr) std::rethrow_exception(e);
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  // At least `grain` elements per chunk, at most 4 chunks per worker (over-
  // decomposition absorbs skew; the helping waiter keeps it deadlock-free).
  const int64_t by_grain = n / std::max<int64_t>(1, grain);
  const int64_t max_chunks =
      std::min(std::max<int64_t>(1, by_grain),
               4 * static_cast<int64_t>(workers_.size()));
  std::exception_ptr e = RunChunks(begin, end, max_chunks, fn);
  if (e != nullptr) std::rethrow_exception(e);
}

Status ThreadPool::TryParallelFor(
    int64_t n, const std::function<void(int64_t, int64_t)>& fn) {
  std::exception_ptr e =
      RunChunks(0, n, static_cast<int64_t>(workers_.size()), fn);
  if (e == nullptr) return Status::Ok();
  return Status::Internal("worker task failed: " + DescribeException(e));
}

}  // namespace mnc
