// Lightweight invariant-checking macros.
//
// The core library does not use exceptions (see DESIGN.md); violated
// preconditions and internal invariants are programming errors and abort the
// process with a source location and a readable message. MNC_CHECK* are
// always on; MNC_DCHECK* compile away in NDEBUG builds and are meant for
// hot-loop invariants.

#ifndef MNC_UTIL_CHECK_H_
#define MNC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mnc::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "MNC_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace mnc::internal

#define MNC_CHECK_MSG(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) {                                                \
      ::mnc::internal::CheckFailed(__FILE__, __LINE__, #cond, msg); \
    }                                                             \
  } while (0)

#define MNC_CHECK(cond) MNC_CHECK_MSG(cond, "")

#define MNC_CHECK_EQ(a, b) MNC_CHECK((a) == (b))
#define MNC_CHECK_NE(a, b) MNC_CHECK((a) != (b))
#define MNC_CHECK_LT(a, b) MNC_CHECK((a) < (b))
#define MNC_CHECK_LE(a, b) MNC_CHECK((a) <= (b))
#define MNC_CHECK_GT(a, b) MNC_CHECK((a) > (b))
#define MNC_CHECK_GE(a, b) MNC_CHECK((a) >= (b))

#ifdef NDEBUG
#define MNC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define MNC_DCHECK(cond) MNC_CHECK(cond)
#endif

#define MNC_DCHECK_LT(a, b) MNC_DCHECK((a) < (b))
#define MNC_DCHECK_LE(a, b) MNC_DCHECK((a) <= (b))
#define MNC_DCHECK_GE(a, b) MNC_DCHECK((a) >= (b))

#endif  // MNC_UTIL_CHECK_H_
