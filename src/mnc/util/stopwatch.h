// Wall-clock stopwatch used by the benchmark harness.

#ifndef MNC_UTIL_STOPWATCH_H_
#define MNC_UTIL_STOPWATCH_H_

#include <chrono>

namespace mnc {

// Measures elapsed wall-clock time; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mnc

#endif  // MNC_UTIL_STOPWATCH_H_
