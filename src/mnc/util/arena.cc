#include "mnc/util/arena.h"

namespace mnc {

ScratchPool& ScratchPool::Global() {
  static ScratchPool* pool = new ScratchPool();  // leaked: outlives all users
  return *pool;
}

}  // namespace mnc
