// Shared configuration and block-partitioning helpers for the parallel
// kernels (sketch construction, Algorithm 1 estimation, Eq. 11 propagation,
// SpGEMM).
//
// The determinism contract: in deterministic mode the row range is cut into
// FIXED-SIZE blocks of `min_rows_per_task` rows. The block layout — and the
// per-block PRNG stream seeded from (seed, stream, block_index) — depends
// only on the problem size and the config, never on the thread count or the
// scheduling order. A kernel that (a) confines every random draw and every
// floating-point accumulation to one block and (b) combines per-block
// partial results in block order therefore produces bit-identical output at
// 1, 2, 7, or 16 threads. Non-deterministic mode trades this away for fewer,
// larger blocks sized by the thread count.
//
// Blocks are the determinism unit, not the scheduling unit: ParallelForBlocks
// hands contiguous runs of blocks to the pool's chunked ParallelFor, so many
// small blocks do not mean many small tasks.

#ifndef MNC_UTIL_PARALLEL_H_
#define MNC_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>

#include "mnc/util/thread_pool.h"

namespace mnc {

namespace tuning {
struct MachineProfile;
}  // namespace tuning

// The parallel stages a MachineProfile holds seq-vs-par crossovers for
// (see mnc/tuning/machine_profile.h for the work metric of each).
enum class TunedStage : int {
  kSketchBuild = 0,  // MncSketch::FromCsr / FromMatrix
  kEstimate,         // Algorithm 1 EstimateProductNnz*/Sparsity
  kPropagate,        // Eq. 11/15 PropagateProduct/EWiseAdd/EWiseMult
  kSpGemm,           // two-pass MultiplySparseSparse
};
inline constexpr int kNumTunedStages = 4;

struct ParallelConfig {
  // 1 (default) runs every kernel sequentially (no pool needed); <= 0
  // selects the hardware concurrency; anything else uses the given pool
  // with this many logical streams.
  int num_threads = 1;

  // Minimum rows per task — also the fixed block size that defines the
  // deterministic partitioning and the per-block PRNG streams.
  int64_t min_rows_per_task = 1024;

  // Fixed-size blocks independent of the thread count (bit-reproducible at
  // any parallelism) vs. thread-count-sized blocks (less partition overhead,
  // results vary with num_threads).
  bool deterministic = true;

  // Number of worker threads this config resolves to (>= 1).
  int ResolvedThreads() const;

  // True when kernels should run on a pool at all.
  bool enabled() const { return num_threads != 1; }

  // Size of one partition block for a problem of n rows (>= 1).
  int64_t BlockSize(int64_t n) const;

  // Number of partition blocks for a problem of n rows (0 when n == 0).
  int64_t NumBlocks(int64_t n) const;

  // Calibration profile consulted by ForStage (not owned; the caller keeps
  // it alive — profiles installed via tuning::SetActiveProfile are pinned
  // for the process lifetime). nullptr falls back to the process-wide
  // active profile; when that is also absent, dispatch uses the built-in
  // constants exactly as before calibration existed.
  const tuning::MachineProfile* profile = nullptr;

  // Config seeded from a calibration profile: num_threads from the argument
  // (0 selects the profile's calibrated thread count), profile attached for
  // per-stage dispatch. `profile` may be nullptr (plain config).
  static ParallelConfig FromProfile(const tuning::MachineProfile* profile,
                                    int num_threads = 0);

  // Per-stage calibrated dispatch: returns a copy of this config with
  // num_threads dropped to 1 when the profile predicts the parallel path
  // loses at `work` units (work metric per stage documented in
  // machine_profile.h). For the grain-invariant stages (kSketchBuild,
  // kSpGemm) a calibrated grain also replaces min_rows_per_task; for
  // kEstimate/kPropagate the caller's grain is preserved because blocks
  // define the FP summation order and the per-block PRNG streams. Either
  // way the selected path is bit-identical to the uncalibrated one (the
  // determinism contract above). With no profile anywhere, returns *this
  // unchanged.
  ParallelConfig ForStage(TunedStage stage, int64_t work) const;
};

// Runs fn(block_index, begin, end) for every partition block of [0, n).
// Sequential (in ascending block order) when `pool` is null, the config is
// sequential, or there is only one block; otherwise blocks are distributed
// over the pool, each block still executing as one indivisible unit.
// Exceptions propagate to the caller like ThreadPool::ParallelFor.
void ParallelForBlocks(
    ThreadPool* pool, const ParallelConfig& config, int64_t n,
    const std::function<void(int64_t, int64_t, int64_t)>& fn);

// Deterministic blocked sum reduction: partial[b] accumulates sequentially
// inside block b, partials combine in ascending block order. The result is a
// pure function of (values, config) — identical at any thread count.
double BlockedSum(ThreadPool* pool, const ParallelConfig& config, int64_t n,
                  const std::function<double(int64_t, int64_t)>& block_sum);

}  // namespace mnc

#endif  // MNC_UTIL_PARALLEL_H_
