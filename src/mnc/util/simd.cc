#include "mnc/util/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mnc {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

bool ParseSimdLevel(const char* spec, SimdLevel* level) {
  if (spec == nullptr) return false;
  if (std::strcmp(spec, "scalar") == 0) {
    *level = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(spec, "avx2") == 0) {
    *level = SimdLevel::kAvx2;
    return true;
  }
  if (std::strcmp(spec, "neon") == 0) {
    *level = SimdLevel::kNeon;
    return true;
  }
  return false;
}

bool SimdLevelSupported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if MNC_SIMD_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdLevel::kNeon:
      // NEON is architectural on aarch64: compiled in == executable.
      return MNC_SIMD_HAVE_NEON != 0;
  }
  return false;
}

namespace {

SimdLevel DetectLevel() {
  SimdLevel best = SimdLevel::kScalar;
  if (SimdLevelSupported(SimdLevel::kAvx2)) best = SimdLevel::kAvx2;
  if (SimdLevelSupported(SimdLevel::kNeon)) best = SimdLevel::kNeon;

  const char* env = std::getenv("MNC_SIMD");
  if (env == nullptr || env[0] == '\0') return best;
  SimdLevel requested;
  if (!ParseSimdLevel(env, &requested)) {
    std::fprintf(stderr,
                 "mnc: ignoring unknown MNC_SIMD=\"%s\" "
                 "(expected scalar|avx2|neon); using %s\n",
                 env, SimdLevelName(best));
    return best;
  }
  if (!SimdLevelSupported(requested)) {
    std::fprintf(stderr,
                 "mnc: MNC_SIMD=%s not available in this build/CPU; "
                 "using %s\n",
                 env, SimdLevelName(best));
    return best;
  }
  return requested;
}

}  // namespace

SimdLevel BestSupportedSimdLevel() {
  static const SimdLevel level = DetectLevel();
  return level;
}

}  // namespace mnc
